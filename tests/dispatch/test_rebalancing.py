"""Tests of the queueing-guided rebalancing extension."""

import numpy as np
import pytest

from repro.dispatch import (
    NearestPolicy,
    QueueingPolicy,
    RebalancingPolicy,
    Reposition,
)
from repro.dispatch.base import BatchSnapshot
from repro.geo import BoundingBox, GeoPoint, GridPartition
from repro.roadnet.travel_time import StraightLineCost
from repro.sim.engine import SimConfig, Simulation
from repro.sim.entities import Driver, Rider, RiderStatus

# Two side-by-side ~3.3 km cells, exactly as the Example 1 worlds.
BOX = BoundingBox(0.0, 0.0, 0.06, 0.03)
GRID = GridPartition(BOX, rows=1, cols=2)
COST = StraightLineCost(speed_mps=10.0, metric="euclidean")
WEST = GeoPoint(0.015, 0.015)
EAST = GeoPoint(0.045, 0.015)


def make_rider(rider_id, t, pickup, dropoff, wait=300.0):
    trip = COST.travel_seconds(pickup, dropoff)
    return Rider(
        rider_id=rider_id, request_time_s=t, pickup=pickup, dropoff=dropoff,
        deadline_s=t + wait, trip_seconds=trip, revenue=trip,
        origin_region=GRID.region_of(pickup),
        destination_region=GRID.region_of(dropoff),
    )


def snapshot(drivers, riders=(), predicted=(0.0, 30.0), now=400.0):
    return BatchSnapshot.with_arrays(
        predicted_riders=np.array(predicted, dtype=float),
        predicted_drivers=np.array([0.0, 0.0]),
        time_s=now,
        tc_seconds=900.0,
        waiting_riders=list(riders),
        available_drivers=list(drivers),
        grid=GRID,
        cost_model=COST,
        pickup_speed_mps=10.0,
    )


def idle_driver(driver_id, position=WEST, since=0.0):
    return Driver(
        driver_id, position, GRID.region_of(position), available_since_s=since
    )


class TestPlanRepositions:
    def test_moves_long_idle_driver_to_demand(self):
        """West has no upcoming demand, east a surge: the idle westerner is
        sent east."""
        policy = RebalancingPolicy(NearestPolicy(), idle_threshold_s=120.0)
        snap = snapshot([idle_driver(0)])
        policy.plan_batch(snap)
        moves = policy.plan_repositions(snap)
        assert moves == [Reposition(driver_id=0, target_region=1)]

    def test_fresh_driver_left_in_place(self):
        policy = RebalancingPolicy(NearestPolicy(), idle_threshold_s=120.0)
        snap = snapshot([idle_driver(0, since=350.0)], now=400.0)
        policy.plan_batch(snap)
        assert policy.plan_repositions(snap) == []

    def test_no_move_without_expected_gain(self):
        """Balanced demand on both sides: travelling buys nothing."""
        policy = RebalancingPolicy(NearestPolicy(), min_gain_s=30.0)
        snap = snapshot([idle_driver(0)], predicted=(30.0, 30.0))
        policy.plan_batch(snap)
        assert policy.plan_repositions(snap) == []

    def test_assigned_drivers_are_not_repositioned(self):
        policy = RebalancingPolicy(NearestPolicy(), idle_threshold_s=0.0)
        rider = make_rider(0, 390.0, WEST, EAST)
        snap = snapshot([idle_driver(0)], riders=[rider])
        assignments = policy.plan_batch(snap)
        assert [a.driver_id for a in assignments] == [0]
        assert policy.plan_repositions(snap) == []

    def test_budget_caps_moves_per_batch(self):
        policy = RebalancingPolicy(
            NearestPolicy(), idle_threshold_s=0.0, max_fraction=0.25
        )
        drivers = [idle_driver(j, WEST.shifted(0.0002 * j)) for j in range(8)]
        snap = snapshot(drivers)
        policy.plan_batch(snap)
        moves = policy.plan_repositions(snap)
        assert len(moves) == 2  # 25% of 8

    def test_feedback_spreads_targets_across_regions(self):
        """Each committed move raises the target's future supply (and its
        ET), so equidistant candidates alternate between two equally hot
        regions instead of stampeding to one.

        The target regions get a healthy driver-rejoin rate: with mu ~ 0
        the paper's reneging form e^(beta*n)/mu diverges, and there the mu
        feedback can even *lower* ET (fewer riders renege) — an inherent
        property of Eq. 4, exercised in the queueing tests."""
        grid3 = GridPartition(BoundingBox(0.0, 0.0, 0.09, 0.03), rows=1, cols=3)
        centre = GeoPoint(0.045, 0.015)  # equidistant from both hot centres
        drivers = [
            Driver(j, centre, 1, available_since_s=0.0) for j in range(4)
        ]
        snap = BatchSnapshot.with_arrays(
            predicted_riders=np.array([20.0, 0.0, 20.0]),
            predicted_drivers=np.array([5.0, 0.0, 5.0]),
            time_s=400.0,
            tc_seconds=900.0,
            waiting_riders=[],
            available_drivers=drivers,
            grid=grid3,
            cost_model=COST,
            pickup_speed_mps=10.0,
        )
        policy = RebalancingPolicy(
            NearestPolicy(), idle_threshold_s=0.0, max_fraction=1.0,
            min_gain_s=0.0,
        )
        policy.plan_batch(snap)
        moves = policy.plan_repositions(snap)
        assert len(moves) == 4
        targets = [m.target_region for m in moves]
        # Without the mu feedback every driver would pick the same region;
        # with it the surplus alternates across both hot regions.
        assert set(targets) == {0, 2}

    def test_longest_idle_moves_first(self):
        policy = RebalancingPolicy(
            NearestPolicy(), idle_threshold_s=0.0, max_fraction=0.13
        )
        drivers = [
            idle_driver(0, WEST, since=300.0),
            idle_driver(1, WEST.shifted(0.0004), since=10.0),
        ]
        snap = snapshot(drivers)
        policy.plan_batch(snap)
        moves = policy.plan_repositions(snap)
        assert [m.driver_id for m in moves] == [1]

    def test_delegates_name_and_assignments(self):
        base = QueueingPolicy("irg")
        policy = RebalancingPolicy(base)
        assert policy.name == "IRG+RB"
        rider = make_rider(0, 390.0, WEST, EAST)
        snap = snapshot([idle_driver(0)], riders=[rider])
        assert [a.rider_id for a in policy.plan_batch(snap)] == [
            a.rider_id for a in base.plan_batch(snap)
        ]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RebalancingPolicy(NearestPolicy(), idle_threshold_s=-1.0)
        with pytest.raises(ValueError):
            RebalancingPolicy(NearestPolicy(), max_fraction=0.0)
        with pytest.raises(ValueError):
            RebalancingPolicy(NearestPolicy(), min_gain_s=-5.0)


class TestEngineIntegration:
    def _world(self):
        """Drivers stranded west; all demand arrives east later."""
        riders = [
            make_rider(i, 600.0 + 30.0 * i, EAST.shifted(0.0004 * i), WEST, wait=240.0)
            for i in range(12)
        ]
        drivers = [idle_driver(j, WEST.shifted(0.0005 * j)) for j in range(3)]
        return riders, drivers

    def _run(self, policy):
        riders, drivers = self._world()
        sim = Simulation(
            riders, drivers, GRID, COST, policy,
            SimConfig(batch_interval_s=10.0, tc_seconds=900.0, horizon_s=3600.0),
        )
        return sim.run()

    def test_repositions_execute_and_are_counted(self):
        result = self._run(RebalancingPolicy(NearestPolicy(), idle_threshold_s=60.0))
        assert result.metrics.repositions >= 1
        # Repositioning itself earns nothing.
        served = [r for r in result.riders if r.status is RiderStatus.SERVED]
        assert result.total_revenue == pytest.approx(
            sum(r.revenue for r in served)
        )

    def test_rebalancing_beats_stranded_baseline(self):
        """3.3 km of deadhead is unaffordable within a 240 s patience:
        without repositioning the westerners never reach the east demand,
        while repositioned drivers serve as many E->W cycles as the trip
        time physically allows (one per driver here)."""
        base = self._run(NearestPolicy())
        rebalanced = self._run(
            RebalancingPolicy(NearestPolicy(), idle_threshold_s=60.0)
        )
        assert base.served_orders == 0
        assert rebalanced.served_orders >= 3
        assert rebalanced.total_revenue > base.total_revenue

    def test_conservation_holds_with_repositions(self):
        result = self._run(RebalancingPolicy(QueueingPolicy("irg"),
                                             idle_threshold_s=60.0))
        assert (
            result.served_orders + result.metrics.reneged_orders
            == len(result.riders)
        )
