"""Tests of the batch-optimal (Hungarian) dispatcher extension."""

import numpy as np
import pytest

from repro.dispatch.base import BatchSnapshot
from repro.dispatch.batch_optimal import BatchOptimalPolicy
from repro.geo import BoundingBox, GeoPoint, GridPartition
from repro.roadnet.travel_time import StraightLineCost
from repro.sim.entities import Driver, Rider

BOX = BoundingBox(0.0, 0.0, 0.1, 0.1)
GRID = GridPartition(BOX, rows=2, cols=2)
COST = StraightLineCost(speed_mps=10.0, metric="euclidean")


def rider(rider_id, pickup, dropoff, wait=600.0):
    return Rider(
        rider_id=rider_id,
        request_time_s=0.0,
        pickup=pickup,
        dropoff=dropoff,
        deadline_s=wait,
        trip_seconds=COST.travel_seconds(pickup, dropoff),
        revenue=COST.travel_seconds(pickup, dropoff),
        origin_region=GRID.region_of(pickup),
        destination_region=GRID.region_of(dropoff),
    )


def snapshot(riders, drivers):
    return BatchSnapshot.with_arrays(
        predicted_riders=np.full(GRID.num_regions, 4.0),
        predicted_drivers=np.ones(GRID.num_regions),
        time_s=0.0,
        tc_seconds=600.0,
        waiting_riders=riders,
        available_drivers=drivers,
        grid=GRID,
        cost_model=COST,
        pickup_speed_mps=10.0,
    )


class TestBatchOptimal:
    def test_invalid_objective(self):
        with pytest.raises(ValueError):
            BatchOptimalPolicy(objective="chaos")

    def test_names(self):
        assert BatchOptimalPolicy("idle_ratio").name == "OPT-IR"
        assert BatchOptimalPolicy("revenue").name == "OPT-REV"

    def test_revenue_objective_takes_expensive_rider(self):
        riders = [
            rider(0, GeoPoint(0.01, 0.01), GeoPoint(0.02, 0.01)),   # short
            rider(1, GeoPoint(0.012, 0.01), GeoPoint(0.09, 0.09)),  # long
        ]
        drivers = [Driver(0, GeoPoint(0.011, 0.01), GRID.region_of(GeoPoint(0.011, 0.01)))]
        plan = BatchOptimalPolicy("revenue").plan_batch(snapshot(riders, drivers))
        assert len(plan) == 1
        assert plan[0].rider_id == 1

    def test_cardinality_never_sacrificed_for_ratio(self):
        """With two drivers and two riders, both get served even if one
        pairing has a poor idle ratio."""
        riders = [
            rider(0, GeoPoint(0.01, 0.01), GeoPoint(0.09, 0.09)),
            rider(1, GeoPoint(0.02, 0.01), GeoPoint(0.02, 0.02)),
        ]
        drivers = [
            Driver(0, GeoPoint(0.011, 0.01), GRID.region_of(GeoPoint(0.011, 0.01))),
            Driver(1, GeoPoint(0.021, 0.01), GRID.region_of(GeoPoint(0.021, 0.01))),
        ]
        plan = BatchOptimalPolicy("idle_ratio").plan_batch(snapshot(riders, drivers))
        assert len(plan) == 2

    def test_matching_validity(self):
        rng = np.random.default_rng(0)
        riders = [
            rider(i, BOX.sample(rng), BOX.sample(rng), wait=800.0) for i in range(8)
        ]
        drivers = [
            Driver(j, BOX.sample(rng), GRID.region_of(BOX.sample(rng)))
            for j in range(4)
        ]
        for objective in ("idle_ratio", "revenue"):
            plan = BatchOptimalPolicy(objective).plan_batch(snapshot(riders, drivers))
            assert len({a.rider_id for a in plan}) == len(plan)
            assert len({a.driver_id for a in plan}) == len(plan)

    def test_empty_batch(self):
        assert BatchOptimalPolicy().plan_batch(snapshot([], [])) == []

    def test_idle_ratio_objective_attaches_predictions(self):
        riders = [rider(0, GeoPoint(0.01, 0.01), GeoPoint(0.08, 0.08))]
        drivers = [Driver(0, GeoPoint(0.011, 0.01), GRID.region_of(GeoPoint(0.011, 0.01)))]
        plan = BatchOptimalPolicy("idle_ratio").plan_batch(snapshot(riders, drivers))
        assert np.isfinite(plan[0].predicted_idle_s)
