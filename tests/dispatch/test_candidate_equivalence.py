"""Equivalence of the vectorized candidate pipeline and the scalar reference.

The vectorized backend must enumerate exactly the same (rider, driver) pairs
in exactly the same order as the retained scalar scan, with ETAs equal to
1e-9 (bit-identical under the manhattan metric, whose vectorized formula
performs the same float64 operations in the same order).
"""

import numpy as np
import pytest

import repro.dispatch.base as base
from repro.dispatch.base import generate_candidate_pairs, set_candidate_backend
from repro.geo import BoundingBox, GeoPoint, GridPartition
from repro.roadnet.travel_time import StraightLineCost
from repro.sim.entities import Driver, Rider

BOX = BoundingBox(0.0, 0.0, 0.1, 0.08)


def random_world(rng, grid, num_riders, num_drivers, expired_fraction=0.2):
    riders = []
    for i in range(num_riders):
        pickup = BOX.sample(rng)
        dropoff = BOX.sample(rng)
        t = 0.0
        wait = float(rng.uniform(-100.0, 600.0))  # negative => expired rider
        if rng.random() > expired_fraction:
            wait = abs(wait)
        riders.append(
            Rider(
                rider_id=i, request_time_s=t, pickup=pickup, dropoff=dropoff,
                deadline_s=t + max(wait, 0.0) if wait >= 0 else t,
                trip_seconds=100.0, revenue=100.0,
                origin_region=grid.region_of(pickup),
                destination_region=grid.region_of(dropoff),
            )
        )
    drivers = [
        Driver(j, BOX.sample(rng), grid.region_of(BOX.sample(rng)))
        for j in range(num_drivers)
    ]
    # Region fields must match positions for the CSR bucketing to be honest.
    for d in drivers:
        d.region = grid.region_of(d.position)
    return riders, drivers


def snapshot_for(riders, drivers, grid, cost, time_s=10.0):
    from repro.dispatch.base import BatchSnapshot

    return BatchSnapshot.with_arrays(
        predicted_riders=np.zeros(grid.num_regions),
        predicted_drivers=np.zeros(grid.num_regions),
        time_s=time_s,
        tc_seconds=600.0,
        waiting_riders=riders,
        available_drivers=drivers,
        grid=grid,
        cost_model=cost,
        pickup_speed_mps=9.0,
    )


@pytest.mark.parametrize("metric", ["manhattan", "euclidean"])
@pytest.mark.parametrize("rows,cols", [(1, 1), (2, 3), (4, 4)])
@pytest.mark.parametrize("cap", [None, 1, 3])
def test_backends_agree_on_random_snapshots(metric, rows, cols, cap):
    rng = np.random.default_rng(rows * 100 + cols * 10 + (cap or 0))
    grid = GridPartition(BOX, rows=rows, cols=cols)
    cost = StraightLineCost(speed_mps=9.0, metric=metric)
    for _ in range(8):
        num_riders = int(rng.integers(0, 25))
        num_drivers = int(rng.integers(0, 30))
        riders, drivers = random_world(rng, grid, num_riders, num_drivers)

        prev = set_candidate_backend("scalar")
        try:
            scalar = generate_candidate_pairs(
                snapshot_for(riders, drivers, grid, cost), cap
            )
        finally:
            set_candidate_backend(prev)
        vectorized = generate_candidate_pairs(
            snapshot_for(riders, drivers, grid, cost), cap
        )

        assert [(r.rider_id, d.driver_id) for r, d, _ in vectorized] == [
            (r.rider_id, d.driver_id) for r, d, _ in scalar
        ]
        s_etas = np.array([eta for _, _, eta in scalar])
        v_etas = np.array([eta for _, _, eta in vectorized])
        np.testing.assert_allclose(v_etas, s_etas, rtol=0.0, atol=1e-9)
        if metric == "manhattan":
            assert np.array_equal(v_etas, s_etas)  # bit-identical


def test_small_and_generic_paths_agree(monkeypatch):
    """Force each internal path; the CandidateSet must be identical."""
    rng = np.random.default_rng(42)
    grid = GridPartition(BOX, rows=4, cols=4)
    cost = StraightLineCost(speed_mps=9.0, metric="manhattan")
    riders, drivers = random_world(rng, grid, 12, 20)

    outputs = []
    # (generic, numpy segments), (generic, python segments), (small path)
    for small_riders, small_segments in [(0, 0), (0, 10_000), (100, 0)]:
        monkeypatch.setattr(base, "_SMALL_RIDER_COUNT", small_riders)
        monkeypatch.setattr(base, "_SMALL_SEGMENT_COUNT", small_segments)
        cand = snapshot_for(riders, drivers, grid, cost).candidates()
        outputs.append(cand)
    first = outputs[0]
    for other in outputs[1:]:
        assert np.array_equal(first.rider_pos, other.rider_pos)
        assert np.array_equal(first.driver_pos, other.driver_pos)
        assert np.array_equal(first.eta_s, other.eta_s)
    assert first.size > 0  # the scenario actually exercises the paths


def test_candidates_memoised_per_cap():
    rng = np.random.default_rng(3)
    grid = GridPartition(BOX, rows=2, cols=2)
    cost = StraightLineCost(speed_mps=9.0, metric="manhattan")
    riders, drivers = random_world(rng, grid, 6, 8, expired_fraction=0.0)
    snap = snapshot_for(riders, drivers, grid, cost)
    assert snap.candidates() is snap.candidates()
    assert snap.candidates(2) is snap.candidates(2)
    assert snap.candidates() is not snap.candidates(2)
