"""Equivalence of the vectorized candidate pipeline and the scalar reference.

The vectorized backend must enumerate exactly the same (rider, driver) pairs
in exactly the same order as the retained scalar scan, with ETAs equal to
1e-9 (bit-identical under the manhattan metric, whose vectorized formula
performs the same float64 operations in the same order).
"""

import numpy as np
import pytest

import repro.dispatch.base as base
from repro.dispatch.base import generate_candidate_pairs, set_candidate_backend
from repro.geo import BoundingBox, GeoPoint, GridPartition
from repro.roadnet.travel_time import StraightLineCost
from repro.sim.entities import Driver, Rider

BOX = BoundingBox(0.0, 0.0, 0.1, 0.08)


def random_world(rng, grid, num_riders, num_drivers, expired_fraction=0.2):
    riders = []
    for i in range(num_riders):
        pickup = BOX.sample(rng)
        dropoff = BOX.sample(rng)
        t = 0.0
        wait = float(rng.uniform(-100.0, 600.0))  # negative => expired rider
        if rng.random() > expired_fraction:
            wait = abs(wait)
        riders.append(
            Rider(
                rider_id=i, request_time_s=t, pickup=pickup, dropoff=dropoff,
                deadline_s=t + max(wait, 0.0) if wait >= 0 else t,
                trip_seconds=100.0, revenue=100.0,
                origin_region=grid.region_of(pickup),
                destination_region=grid.region_of(dropoff),
            )
        )
    drivers = [
        Driver(j, BOX.sample(rng), grid.region_of(BOX.sample(rng)))
        for j in range(num_drivers)
    ]
    # Region fields must match positions for the CSR bucketing to be honest.
    for d in drivers:
        d.region = grid.region_of(d.position)
    return riders, drivers


def snapshot_for(riders, drivers, grid, cost, time_s=10.0):
    from repro.dispatch.base import BatchSnapshot

    return BatchSnapshot.with_arrays(
        predicted_riders=np.zeros(grid.num_regions),
        predicted_drivers=np.zeros(grid.num_regions),
        time_s=time_s,
        tc_seconds=600.0,
        waiting_riders=riders,
        available_drivers=drivers,
        grid=grid,
        cost_model=cost,
        pickup_speed_mps=9.0,
    )


@pytest.mark.parametrize("metric", ["manhattan", "euclidean"])
@pytest.mark.parametrize("rows,cols", [(1, 1), (2, 3), (4, 4)])
@pytest.mark.parametrize("cap", [None, 1, 3])
def test_backends_agree_on_random_snapshots(metric, rows, cols, cap):
    rng = np.random.default_rng(rows * 100 + cols * 10 + (cap or 0))
    grid = GridPartition(BOX, rows=rows, cols=cols)
    cost = StraightLineCost(speed_mps=9.0, metric=metric)
    for _ in range(8):
        num_riders = int(rng.integers(0, 25))
        num_drivers = int(rng.integers(0, 30))
        riders, drivers = random_world(rng, grid, num_riders, num_drivers)

        prev = set_candidate_backend("scalar")
        try:
            scalar = generate_candidate_pairs(
                snapshot_for(riders, drivers, grid, cost), cap
            )
        finally:
            set_candidate_backend(prev)
        vectorized = generate_candidate_pairs(
            snapshot_for(riders, drivers, grid, cost), cap
        )

        assert [(r.rider_id, d.driver_id) for r, d, _ in vectorized] == [
            (r.rider_id, d.driver_id) for r, d, _ in scalar
        ]
        s_etas = np.array([eta for _, _, eta in scalar])
        v_etas = np.array([eta for _, _, eta in vectorized])
        np.testing.assert_allclose(v_etas, s_etas, rtol=0.0, atol=1e-9)
        if metric == "manhattan":
            assert np.array_equal(v_etas, s_etas)  # bit-identical


def test_small_and_generic_paths_agree(monkeypatch):
    """Force each internal path; the CandidateSet must be identical."""
    rng = np.random.default_rng(42)
    grid = GridPartition(BOX, rows=4, cols=4)
    cost = StraightLineCost(speed_mps=9.0, metric="manhattan")
    riders, drivers = random_world(rng, grid, 12, 20)

    outputs = []
    # (generic, numpy segments), (generic, python segments), (small path)
    for small_riders, small_segments in [(0, 0), (0, 10_000), (100, 0)]:
        monkeypatch.setattr(base, "_SMALL_RIDER_COUNT", small_riders)
        monkeypatch.setattr(base, "_SMALL_SEGMENT_COUNT", small_segments)
        cand = snapshot_for(riders, drivers, grid, cost).candidates()
        outputs.append(cand)
    first = outputs[0]
    for other in outputs[1:]:
        assert np.array_equal(first.rider_pos, other.rider_pos)
        assert np.array_equal(first.driver_pos, other.driver_pos)
        assert np.array_equal(first.eta_s, other.eta_s)
    assert first.size > 0  # the scenario actually exercises the paths


def test_candidates_memoised_per_cap():
    rng = np.random.default_rng(3)
    grid = GridPartition(BOX, rows=2, cols=2)
    cost = StraightLineCost(speed_mps=9.0, metric="manhattan")
    riders, drivers = random_world(rng, grid, 6, 8, expired_fraction=0.0)
    snap = snapshot_for(riders, drivers, grid, cost)
    assert snap.candidates() is snap.candidates()
    assert snap.candidates(2) is snap.candidates(2)
    assert snap.candidates() is not snap.candidates(2)


def test_reach_disc_and_lower_bound_respect_fast_network_edges():
    """Edges faster than the nominal pickup speed must not lose pairs to
    either prune: the driver below sits outside the ``pickup_speed_mps``
    disc yet reaches the rider inside the deadline over a 40 m/s edge, so
    the reach disc must widen to the model's ``max_speed_mps`` — and the
    great-circle ETA lower bound must price metres at that speed too (a
    bound assuming a slower ceiling would exceed the true ETA and the
    vectorized backend would prune what the scalar backend admits)."""
    from repro.roadnet import RoadGraph, RoadNetworkCost

    box = BoundingBox(0.0, 0.0, 0.08, 0.02)
    grid = GridPartition(box, rows=1, cols=4)
    pickup = GeoPoint(0.01, 0.01)   # centre of cell 0
    far = GeoPoint(0.07, 0.01)      # centre of cell 3

    graph = RoadGraph()
    a = graph.add_vertex(pickup)
    b = graph.add_vertex(far)
    from repro.geo.distance import equirectangular_m

    meters = equirectangular_m(pickup, far)
    graph.add_bidirectional_edge(a, b, meters / 40.0)  # 40 m/s expressway
    cost = RoadNetworkCost(graph, access_speed_mps=8.0)
    assert cost.max_speed_mps == pytest.approx(40.0)

    # True ETA ~ meters/40 ~ 167 s; the 200 s deadline admits it with
    # little slack, so an inadmissible lower bound (e.g. metres priced at
    # 4x the access speed = 32 m/s -> ~209 s) would wrongly prune it.
    deadline = 200.0
    eta = cost.travel_seconds(far, pickup)
    assert eta <= deadline
    assert float(
        cost.eta_lower_bound_many(
            np.array([[far.lon, far.lat]]), np.array([[pickup.lon, pickup.lat]])
        )[0]
    ) <= eta

    rider = Rider(
        rider_id=0, request_time_s=0.0, pickup=pickup, dropoff=far,
        deadline_s=deadline, trip_seconds=100.0, revenue=100.0,
        origin_region=grid.region_of(pickup),
        destination_region=grid.region_of(far),
    )
    driver = Driver(0, far, grid.region_of(far))
    # Nominal 9 m/s x 200 s = 1800 m reach: cell 3 (>4400 m away) is out.
    assert 9.0 * deadline < meters

    for backend in ("vectorized", "scalar"):
        prev = set_candidate_backend(backend)
        try:
            pairs = generate_candidate_pairs(
                snapshot_for([rider], [driver], grid, cost, time_s=0.0)
            )
        finally:
            set_candidate_backend(prev)
        assert [(r.rider_id, d.driver_id) for r, d, _ in pairs] == [(0, 0)], (
            f"{backend} backend pruned a feasible fast-edge pair"
        )
        assert pairs[0][2] == eta <= deadline


def buckets_for(drivers, grid):
    """Per-region sorted position buckets, as the fleet layout supplies."""
    regions = np.array([d.region for d in drivers], dtype=np.int64)
    return [
        np.flatnonzero(regions == k).astype(np.int64)
        for k in range(grid.num_regions)
    ]


def snapshot_with_buckets(riders, drivers, grid, cost, time_s=10.0):
    from repro.dispatch.base import BatchSnapshot

    return BatchSnapshot.with_arrays(
        predicted_riders=np.zeros(grid.num_regions),
        predicted_drivers=np.zeros(grid.num_regions),
        time_s=time_s,
        tc_seconds=600.0,
        waiting_riders=riders,
        available_drivers=drivers,
        grid=grid,
        cost_model=cost,
        pickup_speed_mps=9.0,
        driver_buckets=buckets_for(drivers, grid),
    )


#: A box straddling 59-60N, where a longitude degree is half an equatorial
#: one — stresses the cos floor in the diamond prune's width bound.
HIGH_LAT_BOX = BoundingBox(10.0, 59.0, 10.2, 59.16)


@pytest.mark.parametrize("metric", ["manhattan", "euclidean"])
@pytest.mark.parametrize("box", [BOX, HIGH_LAT_BOX])
@pytest.mark.parametrize("force_generic", [False, True])
def test_bucket_path_matches_scalar(metric, box, force_generic, monkeypatch):
    """The bucket scan (diamond-pruned under manhattan) equals the scalar
    full scan pair-for-pair: the prune may only skip buckets whose every
    driver the ETA filter would reject anyway."""
    if force_generic:
        monkeypatch.setattr(base, "_SMALL_RIDER_COUNT", 0)
    rng = np.random.default_rng(7 if force_generic else 11)
    grid = GridPartition(box, rows=6, cols=6)
    cost = StraightLineCost(speed_mps=9.0, metric=metric)
    global BOX
    prev_box = BOX
    BOX = box  # random_world samples from the module box
    try:
        for _ in range(6):
            riders, drivers = random_world(
                rng, grid, int(rng.integers(1, 20)), int(rng.integers(1, 40))
            )
            # Short patience => radius-1 discs, where only the exact
            # point-to-edge gaps can prune anything.
            for r in riders:
                r.deadline_s = 10.0 + float(rng.uniform(0.0, 200.0))

            prev = set_candidate_backend("scalar")
            try:
                scalar = generate_candidate_pairs(
                    snapshot_for(riders, drivers, grid, cost)
                )
            finally:
                set_candidate_backend(prev)
            bucketed = generate_candidate_pairs(
                snapshot_with_buckets(riders, drivers, grid, cost)
            )
            assert [(r.rider_id, d.driver_id) for r, d, _ in bucketed] == [
                (r.rider_id, d.driver_id) for r, d, _ in scalar
            ]
            np.testing.assert_allclose(
                [e for _, _, e in bucketed],
                [e for _, _, e in scalar],
                rtol=0.0,
                atol=1e-9,
            )
    finally:
        BOX = prev_box


@pytest.mark.parametrize("force_generic", [False, True])
def test_diamond_prune_skips_unreachable_corners(force_generic, monkeypatch):
    """The prune must actually engage: with one driver per cell and a reach
    shorter than the corner gap, the manhattan bucket path evaluates
    strictly fewer ETAs than the square scan — for the same output."""
    if force_generic:
        monkeypatch.setattr(base, "_SMALL_RIDER_COUNT", 0)
    grid = GridPartition(BOX, rows=5, cols=5)
    cost = StraightLineCost(speed_mps=9.0, metric="manhattan")
    center = grid.cell_bbox(grid.region_id(2, 2)).center
    rider = Rider(
        rider_id=0, request_time_s=0.0, pickup=center, dropoff=center,
        deadline_s=10.0 + grid.cell_size_m()[0] * 1.2 / 9.0,
        trip_seconds=100.0, revenue=100.0,
        origin_region=grid.region_of(center),
        destination_region=grid.region_of(center),
    )
    drivers = []
    for k in range(grid.num_regions):
        pos = grid.cell_bbox(k).center
        drivers.append(Driver(k, pos, k))

    def counting(cost_model):
        calls = []
        native = type(cost_model).travel_seconds_many

        def spy(a_lonlat, b_lonlat):
            calls.append(len(np.asarray(a_lonlat)))
            return native(cost_model, a_lonlat, b_lonlat)

        cost_model.travel_seconds_many = spy
        return calls

    square_cost = StraightLineCost(speed_mps=9.0, metric="manhattan")
    square_cost.reach_metric = None  # disable the prune, keep the metric
    diamond_calls = counting(cost)
    square_calls = counting(square_cost)

    pruned = snapshot_with_buckets([rider], drivers, grid, cost).candidates()
    square = snapshot_with_buckets(
        [rider], drivers, grid, square_cost
    ).candidates()

    assert np.array_equal(pruned.rider_pos, square.rider_pos)
    assert np.array_equal(pruned.driver_pos, square.driver_pos)
    assert np.array_equal(pruned.eta_s, square.eta_s)
    assert pruned.size > 0
    assert sum(diamond_calls) < sum(square_calls), (
        "diamond prune evaluated as many pairs as the square scan"
    )
