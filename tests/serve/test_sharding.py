"""Region-sharded dispatch: N workers behind a router equal one worker.

The load-bearing claims, each proven over real HTTP against in-process
shard stacks:

- the :class:`~repro.serve.shard.ShardPlan` bands the grid into
  contiguous region-id ranges and round-trips through its wire payload;
- a 4-shard day (rebalancing off) produces a merged assignment log
  bit-identical to the 1-shard day for the same shard-local workload —
  same pairs, same times, same per-rider economics;
- killing one shard worker mid-day and recovering it from its own WAL
  preserves that identity (the router's absolute tick addressing lets
  the recovered worker simply re-join the lockstep broadcast);
- recovery refuses a WAL written under a different shard plan;
- with rebalancing on, a skewed hot-band workload sees a strictly lower
  max per-shard queue depth than with it off, and the migrations
  round-trip through both shards' WALs.
"""

import dataclasses
import math

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_serve_world, clear_caches
from repro.serve.loadgen import _window_batches
from repro.serve.router import build_sharded_stack
from repro.serve.service import DispatchService, rider_to_payload
from repro.serve.shard import ShardPlan, shard_local_workload
from repro.serve.wal import WalError
from repro.sim.entities import Rider
from repro.sim.stepper import num_batches_for_horizon

CONFIG = ExperimentConfig(
    daily_orders=8_000.0,
    num_drivers=60,
    horizon_s=2 * 3600.0,
    batch_interval_s=10.0,
)

NUM_SHARDS = 4


@pytest.fixture(autouse=True, scope="module")
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


@pytest.fixture(scope="module")
def world():
    return build_serve_world(CONFIG, "NEAR")


@pytest.fixture(scope="module")
def workload(world):
    """The day's riders made shard-local, so cross-band pairs are
    infeasible and the greedy matching decomposes across bands."""
    riders, _, grid, cost_model, _, _ = world
    plan = ShardPlan.from_grid(grid, NUM_SHARDS)
    local = shard_local_workload(riders, grid, plan, cost_model)
    local = [r for r in local if r.request_time_s < CONFIG.horizon_s]
    assert len(local) > 300  # the transform must not gut the day
    return local


def _strip(row: dict) -> dict:
    """Drop the wall-clock field; everything else must be bit-identical."""
    return {k: v for k, v in row.items() if k != "latency_wall_s"}


def _run_day(stack, riders, max_depth=False):
    """Drive a full lockstep day through a stack's router."""
    router = stack.router
    horizon_batches = num_batches_for_horizon(
        CONFIG.horizon_s, CONFIG.batch_interval_s
    )
    deepest = 0
    for window, batch in _window_batches(riders, CONFIG.batch_interval_s):
        if window > 0:
            router.tick_until(window)
        router.submit([rider_to_payload(r) for r in batch])
        router.tick_until(window + 1)
        if max_depth:
            status = router.status()
            deepest = max(
                deepest,
                max(s["waiting"] for s in status["sharding"]["per_shard"]),
            )
    router.tick_until(horizon_batches)
    final = router.finalize()
    return {
        "assignments": [_strip(r) for r in router.assignments()],
        "final": final,
        "status": router.status(),
        "max_depth": deepest,
    }


def _canonical_revenue(assignments, riders) -> float:
    """Summation-order-free economics: fsum over sorted assigned riders."""
    revenue = {r.rider_id: r.revenue for r in riders}
    return math.fsum(
        revenue[row["rider_id"]]
        for row in sorted(assignments, key=lambda r: r["rider_id"])
    )


# -- ShardPlan -----------------------------------------------------------


class TestShardPlan:
    def test_bands_are_contiguous_and_cover_the_grid(self):
        plan = ShardPlan.from_shape(7, 5, 3)
        ranges = [plan.region_range(s) for s in range(plan.num_shards)]
        assert ranges[0][0] == 0
        assert ranges[-1][1] == plan.num_regions == 35
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo  # no gap, no overlap
        for region in range(plan.num_regions):
            shard = plan.shard_of_region(region)
            lo, hi = plan.region_range(shard)
            assert lo <= region < hi

    def test_single_shard_owns_everything(self):
        plan = ShardPlan.from_shape(4, 4, 1)
        assert plan.region_range(0) == (0, 16)
        assert all(plan.shard_of_region(r) == 0 for r in range(16))

    def test_more_shards_than_rows_is_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            ShardPlan.from_shape(3, 8, 4)

    def test_payload_round_trip(self):
        plan = ShardPlan.from_shape(10, 6, 4)
        clone = ShardPlan.from_payload(plan.to_payload())
        assert clone == plan

    def test_bad_bounds_are_rejected(self):
        with pytest.raises(ValueError):
            ShardPlan(rows=4, cols=4, row_bounds=(0, 2, 2, 4))
        with pytest.raises(ValueError):
            ShardPlan(rows=4, cols=4, row_bounds=(1, 4))


def test_shard_local_workload_is_exactly_infeasible_across_bands(world):
    riders, _, grid, cost_model, _, _ = world
    plan = ShardPlan.from_grid(grid, NUM_SHARDS)
    local = shard_local_workload(riders, grid, plan, cost_model)
    for rider in local[:500]:
        shard = plan.shard_of_region(rider.origin_region)
        assert plan.shard_of_region(rider.destination_region) == shard
        # No out-of-band driver can beat the tightened deadline: the
        # patience is capped below the ETA to the nearest band boundary.
        lat_lo, lat_hi = plan.band_lat_bounds(shard, grid)
        assert lat_lo <= rider.dropoff.lat <= lat_hi


# -- 4-shard vs 1-shard bit-identity over real HTTP ----------------------


@pytest.fixture(scope="module")
def one_shard_day(workload):
    with build_sharded_stack(CONFIG, "NEAR", 1) as stack:
        return _run_day(stack, workload)


def test_four_shards_equal_one_shard(workload, one_shard_day):
    with build_sharded_stack(CONFIG, "NEAR", NUM_SHARDS) as stack:
        four = _run_day(stack, workload)
    one = one_shard_day
    assert four["assignments"] == one["assignments"]
    assert len(four["assignments"]) > 0
    for key in ("served_orders", "reneged_orders", "total_orders"):
        assert four["final"][key] == one["final"][key]
    # Per-shard float summation reorders the revenue sum; compare the
    # canonical summation-order-free figure instead of the raw total.
    assert four["final"]["total_revenue"] == pytest.approx(
        one["final"]["total_revenue"]
    )
    for key in ("requests_received", "served_orders", "reneged_orders"):
        assert four["status"][key] == one["status"][key]


def test_merged_revenue_matches_canonical_sum(workload, one_shard_day):
    canonical = _canonical_revenue(one_shard_day["assignments"], workload)
    assert one_shard_day["final"]["total_revenue"] == pytest.approx(canonical)


def test_kill_and_recover_one_shard_preserves_identity(
    tmp_path, workload, one_shard_day
):
    """Kill shard 1 mid-day, recover it from its own WAL, finish the day."""
    from repro.serve.server import start_server_in_thread

    wal_dir = tmp_path / "wal"
    stack = build_sharded_stack(
        CONFIG, "NEAR", NUM_SHARDS, wal_dir=wal_dir, fsync="never"
    )
    victim = 1
    horizon_batches = num_batches_for_horizon(
        CONFIG.horizon_s, CONFIG.batch_interval_s
    )
    windows = list(_window_batches(workload, CONFIG.batch_interval_s))
    kill_at = windows[len(windows) // 2][0]
    killed = False
    try:
        router = stack.router
        for window, batch in windows:
            if not killed and window >= kill_at:
                # Kill: stop the worker's server and drop its in-memory
                # state; everything it knew survives only in its WAL.
                port = stack.handles[victim].port
                stack.handles[victim].stop()
                stack.services[victim].close()
                service, report = DispatchService.recover(
                    wal_dir / f"shard-{victim}" / "dispatch.wal",
                    CONFIG,
                    "NEAR",
                    fsync="never",
                    shard_plan=stack.plan,
                    shard_index=victim,
                )
                assert report.requests > 0
                assert report.ticks > 0
                stack.services[victim] = service
                stack.handles[victim] = start_server_in_thread(
                    service, port=port
                )
                killed = True
            if window > 0:
                router.tick_until(window)
            router.submit([rider_to_payload(r) for r in batch])
            router.tick_until(window + 1)
        router.tick_until(horizon_batches)
        final = router.finalize()
        assignments = [_strip(r) for r in router.assignments()]
    finally:
        stack.close()
    assert killed
    assert assignments == one_shard_day["assignments"]
    for key in ("served_orders", "reneged_orders", "total_orders"):
        assert final[key] == one_shard_day["final"][key]


def test_recover_refuses_mismatched_shard_plan(tmp_path, workload):
    wal_dir = tmp_path / "wal"
    with build_sharded_stack(
        CONFIG, "NEAR", NUM_SHARDS, wal_dir=wal_dir, fsync="never"
    ) as stack:
        stack.router.submit(
            [rider_to_payload(r) for r in workload[:5]]
        )
        stack.router.tick_until(2)
    wal_path = wal_dir / "shard-0" / "dispatch.wal"
    plan = ShardPlan.from_shape(CONFIG.grid_rows, CONFIG.grid_cols, NUM_SHARDS)
    # Wrong shard index within the right plan.
    with pytest.raises(WalError, match="fingerprint mismatch"):
        DispatchService.recover(
            wal_path, CONFIG, "NEAR", shard_plan=plan, shard_index=1
        )
    # Right index, differently banded plan.
    other = ShardPlan.from_shape(CONFIG.grid_rows, CONFIG.grid_cols, 2)
    with pytest.raises(WalError, match="fingerprint mismatch"):
        DispatchService.recover(
            wal_path, CONFIG, "NEAR", shard_plan=other, shard_index=0
        )
    # Unsharded recovery of a sharded log is refused too.
    with pytest.raises(WalError, match="fingerprint mismatch"):
        DispatchService.recover(wal_path, CONFIG, "NEAR")


# -- cross-shard rebalancing ---------------------------------------------


REBALANCE_CONFIG = ExperimentConfig(
    daily_orders=8_000.0,
    num_drivers=80,
    horizon_s=1_800.0,
    batch_interval_s=20.0,
)


def _hot_band_workload():
    """Synthetic steady demand aimed at the band with the fewest drivers.

    The hot shard's own supply is exhausted within minutes; only
    cross-shard migration can keep its queue shallow.
    """
    _, drivers, grid, cost_model, _, _ = build_serve_world(
        REBALANCE_CONFIG, "NEAR"
    )
    plan = ShardPlan.from_grid(grid, NUM_SHARDS)
    counts = [0] * NUM_SHARDS
    for driver in drivers:
        counts[plan.shard_of_region(driver.region)] += 1
    hot = min(range(NUM_SHARDS), key=counts.__getitem__)
    regions = list(plan.regions_of(hot))
    centers = [grid.center_of(r) for r in regions]
    riders = []
    for i in range(450):  # one every 4 s for 30 min
        t = i * 4.0
        a, b = centers[i % len(centers)], centers[(i + 1) % len(centers)]
        riders.append(
            Rider(
                rider_id=10_000_000 + i,
                request_time_s=t,
                pickup=a,
                dropoff=b,
                deadline_s=t + 600.0,
                trip_seconds=cost_model.travel_seconds(a, b),
                revenue=5.0,
                origin_region=regions[i % len(regions)],
                destination_region=regions[(i + 1) % len(regions)],
            )
        )
    return riders


def _run_rebalance_day(riders, rebalance, wal_dir=None):
    stack = build_sharded_stack(
        REBALANCE_CONFIG,
        "NEAR",
        NUM_SHARDS,
        rebalance=rebalance,
        rebalance_max_moves=16,
        wal_dir=wal_dir,
        fsync="never",
    )
    horizon_batches = num_batches_for_horizon(
        REBALANCE_CONFIG.horizon_s, REBALANCE_CONFIG.batch_interval_s
    )
    with stack:
        router = stack.router
        deepest = 0
        for window, batch in _window_batches(
            riders, REBALANCE_CONFIG.batch_interval_s
        ):
            if window > 0:
                router.tick_until(window)
            router.submit([rider_to_payload(r) for r in batch])
            router.tick_until(window + 1)
            status = router.status()
            deepest = max(
                deepest,
                max(s["waiting"] for s in status["sharding"]["per_shard"]),
            )
        router.tick_until(horizon_batches)
        final = router.finalize()
        status = router.status()
        return {
            "max_depth": deepest,
            "migrations": router.migrations,
            "final": final,
            "driver_events": status["driver_events"],
        }


def test_rebalancing_strictly_lowers_max_queue_depth(tmp_path):
    riders = _hot_band_workload()
    off = _run_rebalance_day(riders, rebalance=False)
    on = _run_rebalance_day(riders, rebalance=True, wal_dir=tmp_path / "wal")
    assert off["migrations"] == 0
    assert on["migrations"] > 0
    assert on["max_depth"] < off["max_depth"]
    assert on["final"]["served_orders"] > off["final"]["served_orders"]
    # Every migration is a donor leave plus a recipient join, all applied.
    assert on["driver_events"]["applied"] >= 2 * on["migrations"]
    assert on["driver_events"]["pending"] == 0

    # The migrations round-trip through the per-shard WALs: recovering
    # every shard replays them and lands on the same fleet state.
    plan = ShardPlan.from_shape(
        REBALANCE_CONFIG.grid_rows, REBALANCE_CONFIG.grid_cols, NUM_SHARDS
    )
    replayed_events = 0
    recovered_served = 0
    for index in range(NUM_SHARDS):
        service, report = DispatchService.recover(
            tmp_path / "wal" / f"shard-{index}" / "dispatch.wal",
            REBALANCE_CONFIG,
            "NEAR",
            resume=False,
            shard_plan=plan,
            shard_index=index,
        )
        replayed_events += report.driver_events
        recovered_served += service.stepper.metrics.served_orders
        service.close()
    assert replayed_events >= 2 * on["migrations"]
    assert recovered_served == on["final"]["served_orders"]


def test_rebalance_respects_move_cap():
    riders = _hot_band_workload()[:120]
    stack = build_sharded_stack(
        REBALANCE_CONFIG,
        "NEAR",
        NUM_SHARDS,
        rebalance=True,
        rebalance_max_moves=2,
    )
    with stack:
        router = stack.router
        router.submit([rider_to_payload(r) for r in riders])
        previous = 0
        for window in (1, 2, 3):  # one rebalance round per tick call
            router.tick_until(window)
            assert router.migrations - previous <= 2
            previous = router.migrations


def test_router_routes_driver_events_by_owner(workload):
    with build_sharded_stack(CONFIG, "NEAR", NUM_SHARDS) as stack:
        router = stack.router
        grid = router.grid
        # Join a driver into shard 2's band, then leave it — the leave
        # carries no position, so the router must find the owner.
        lo, _ = stack.plan.region_range(2)
        center = grid.center_of(lo)
        joined = router.submit_drivers(
            {
                "event": "join",
                "driver_id": 999_001,
                "time_s": 0.0,
                "position": [center.lon, center.lat],
            }
        )
        assert joined["accepted"] == 1
        router.tick_until(1)
        listing = {
            d["driver_id"] for d in stack.services[2].drivers()
        }
        assert 999_001 in listing
        left = router.submit_drivers(
            {"event": "leave", "driver_id": 999_001, "time_s": 15.0}
        )
        assert left["accepted"] == 1
        router.tick_until(3)  # the t = 20 s step drains the leave
        status = router.status()
        assert status["driver_events"]["applied"] >= 2


def test_request_status_probes_all_shards(workload):
    rider = dataclasses.replace(workload[0], rider_id=123_456_789)
    with build_sharded_stack(CONFIG, "NEAR", NUM_SHARDS) as stack:
        router = stack.router
        router.submit(rider_to_payload(rider))
        found = router.request_status(rider.rider_id)
        assert found is not None
        assert found["rider_id"] == rider.rider_id
        assert router.request_status(987_654_321) is None
