"""End-to-end: the live server is the offline simulation, exactly.

An in-process :class:`~repro.serve.server.DispatchServer` is booted on a
background thread, the scenario's workload is replayed over real HTTP in
lockstep through the offline tick schedule, and the server's assignment
log must equal what :func:`~repro.experiments.runner.run_policy_full`
computes for the same config — same pairs, same times, same economics.
Plus the service-layer semantics the HTTP surface promises: late requests
join the next batch, unknown riders 404, and ``/status`` exposes the
stepper's per-phase profile.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import clear_caches, run_policy_full
from repro.serve.loadgen import replay_workload
from repro.serve.server import start_server_in_thread
from repro.serve.service import DispatchService

CONFIG = ExperimentConfig(
    daily_orders=2_000.0,
    num_drivers=16,
    horizon_s=4 * 3600.0,
    batch_interval_s=10.0,
    space_scale=0.1,
    grid_rows=3,
    grid_cols=3,
)


@pytest.fixture(autouse=True, scope="module")
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _get(host, port, path):
    try:
        with urllib.request.urlopen(f"http://{host}:{port}{path}") as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _post(host, port, path, payload=None):
    body = json.dumps(payload).encode() if payload is not None else b""
    request = urllib.request.Request(
        f"http://{host}:{port}{path}", data=body, method="POST"
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


@pytest.mark.parametrize("policy_name", ["NEAR", "IRG-R"])
def test_served_assignments_equal_offline_replay(policy_name):
    offline = run_policy_full(CONFIG, policy_name)
    offline_pairs = [
        (r.rider_id, r.driver_id, r.assign_time_s, r.pickup_time_s)
        for r in sorted(offline.riders, key=lambda r: r.rider_id)
        if r.driver_id is not None
    ]

    service = DispatchService.from_config(CONFIG, policy_name)
    with start_server_in_thread(service) as handle:
        report = replay_workload(
            handle.host,
            handle.port,
            service.workload,
            batch_interval_s=CONFIG.batch_interval_s,
            speedup=0.0,
            horizon_s=CONFIG.horizon_s,
        )
        _, served = _get(handle.host, handle.port, "/assignments")

    online_pairs = sorted(
        (a["rider_id"], a["driver_id"], a["assign_time_s"], a["pickup_time_s"])
        for a in served["assignments"]
    )
    assert online_pairs == offline_pairs
    assert report.assigned == offline.metrics.served_orders
    assert report.reneged == offline.metrics.reneged_orders
    # Every request submitted over HTTP got a measured assignment latency.
    assert report.assignment_latency_p99_s > 0.0
    assert report.unresolved == 0


def test_status_and_request_lifecycle_over_http():
    service = DispatchService.from_config(CONFIG, "NEAR")
    workload = sorted(
        service.workload, key=lambda r: (r.request_time_s, r.rider_id)
    )
    with start_server_in_thread(service) as handle:
        host, port = handle.host, handle.port

        status, body = _get(host, port, "/status")
        assert status == 200
        assert body["policy"] == "NEAR"
        assert body["batch_interval_s"] == CONFIG.batch_interval_s
        assert body["sim_time_s"] is None  # nothing ticked yet

        first = workload[0]
        code, accepted = _post(
            host, port, "/requests",
            [
                {
                    "rider_id": first.rider_id,
                    "request_time_s": first.request_time_s,
                    "pickup": [first.pickup.lon, first.pickup.lat],
                    "dropoff": [first.dropoff.lon, first.dropoff.lat],
                    "deadline_s": first.deadline_s,
                    "trip_seconds": first.trip_seconds,
                    "revenue": first.revenue,
                }
            ],
        )
        assert code == 200 and accepted["accepted"] == 1

        # Tick through the rider's window: it gets assigned (idle fleet).
        _post(host, port, "/tick", {"count": accepted["next_batch_index"] + 2})
        code, lifecycle = _get(host, port, f"/requests/{first.rider_id}")
        assert code == 200
        assert lifecycle["status"] == "served"
        assert lifecycle["driver_id"] is not None
        assert lifecycle["latency_wall_s"] >= 0.0

        code, _ = _get(host, port, "/requests/999999")
        assert code == 404

        # The stepper profiles serve-mode ticks; /status surfaces it.
        _, body = _get(host, port, "/status")
        assert set(body["phase_seconds"]) >= {
            "event_drain", "snapshot_build", "plan_candidates",
            "plan_policy", "apply",
        }
        assert body["ticks"] >= 1
        assert body["served_orders"] == 1


def test_retry_safe_http_surface(tmp_path):
    """The two mutations a reconnecting client retries — submit and tick —
    are idempotent over HTTP, and /status surfaces the WAL it logs to."""
    service = DispatchService.from_config(
        CONFIG, "NEAR", wal_path=tmp_path / "dispatch.wal"
    )
    workload = sorted(service.workload, key=lambda r: r.request_time_s)
    try:
        with start_server_in_thread(service) as handle:
            host, port = handle.host, handle.port

            # Absolute tick addressing: a retried tick cannot double-fire.
            _, first = _post(host, port, "/tick", {"until_index": 4})
            assert first["ticks"] == 4 and first["next_batch_index"] == 4
            _, retry = _post(host, port, "/tick", {"until_index": 4})
            assert retry["ticks"] == 0 and retry["next_batch_index"] == 4

            # A resubmitted request is acknowledged, never double-ingested.
            rider = workload[0]
            payload = {
                "rider_id": rider.rider_id,
                "request_time_s": rider.request_time_s,
                "pickup": [rider.pickup.lon, rider.pickup.lat],
                "dropoff": [rider.dropoff.lon, rider.dropoff.lat],
                "deadline_s": rider.deadline_s,
                "trip_seconds": rider.trip_seconds,
                "revenue": rider.revenue,
            }
            code, accepted = _post(host, port, "/requests", payload)
            assert code == 200 and accepted["accepted"] == 1
            code, resent = _post(host, port, "/requests", payload)
            assert code == 200
            assert resent["accepted"] == 0 and resent["duplicates"] == 1

            _, status = _get(host, port, "/status")
            assert status["duplicate_requests"] == 1
            # meta + 4 empty ticks + 1 request record (dupe not re-logged).
            assert status["wal"]["records_appended"] == 6
    finally:
        service.close()


def test_late_request_over_http_joins_next_batch():
    service = DispatchService.from_config(CONFIG, "NEAR")
    workload = sorted(
        service.workload, key=lambda r: (r.request_time_s, r.rider_id)
    )
    with start_server_in_thread(service) as handle:
        host, port = handle.host, handle.port
        # Advance the clock well past the first requests' windows...
        _post(host, port, "/tick", {"count": 30})
        _, status = _get(host, port, "/status")
        assert status["sim_time_s"] == 290.0

        # ...then submit a request whose window is long gone.
        late = workload[0]
        assert late.request_time_s < 290.0
        _, accepted = _post(
            host, port, "/requests",
            {
                "rider_id": late.rider_id,
                "request_time_s": late.request_time_s,
                "pickup": [late.pickup.lon, late.pickup.lat],
                "dropoff": [late.dropoff.lon, late.dropoff.lat],
                "deadline_s": late.deadline_s + 600.0,
                "trip_seconds": late.trip_seconds,
                "revenue": late.revenue,
            },
        )
        # It joins the *next* batch (index 30, t=300) — never dropped.
        assert accepted["next_batch_index"] == 30
        _post(host, port, "/tick")
        _, lifecycle = _get(host, port, f"/requests/{late.rider_id}")
        assert lifecycle["status"] == "served"
        assert lifecycle["assign_time_s"] == 300.0
