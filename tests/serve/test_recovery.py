"""Crash recovery: a recovered service is the never-crashed service.

The scenario under test is the durability story end to end: run a day
with a write-ahead log, "crash" mid-day (abandon the service without a
clean shutdown — with ``fsync=batch`` every record is already past the
process), rebuild with :meth:`DispatchService.recover`, finish the day,
and demand *bit identity* with an uninterrupted run — same assignment
log, same economics, same per-batch series.  Plus the refusal modes:
torn tails truncate, mid-log corruption and fingerprint mismatches are
hard errors, and a tampered history is caught by the replay check.
"""

import shutil
import struct

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import clear_caches
from repro.serve.service import DispatchService
from repro.serve.wal import (
    WalCorruptionError,
    WalError,
    WalReplayError,
    WriteAheadLog,
    read_wal,
)

CONFIG = ExperimentConfig(
    daily_orders=2_000.0,
    num_drivers=16,
    horizon_s=2 * 3600.0,
    batch_interval_s=10.0,
    space_scale=0.1,
    grid_rows=3,
    grid_cols=3,
)
POLICY = "NEAR"
HORIZON_WINDOWS = int(CONFIG.horizon_s // CONFIG.batch_interval_s)
CRASH_WINDOW = HORIZON_WINDOWS // 2


@pytest.fixture(autouse=True, scope="module")
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _by_window(workload):
    out = {}
    for rider in workload:
        window = int(rider.request_time_s // CONFIG.batch_interval_s)
        out.setdefault(window, []).append(rider)
    return out


def drive(service, until_window):
    """Lockstep day: submit each window's requests, then tick it closed.

    Starts from wherever the service's batch clock is, so the same helper
    drives a fresh day and resumes a recovered one.
    """
    by_window = _by_window(service.workload)
    for window in range(service.stepper.next_batch_index, until_window):
        riders = by_window.get(window)
        if riders:
            service.submit_riders(riders)
        service.tick_until(window + 1)


def finish(service):
    """Drive through the horizon, drain, and return the final economics."""
    drive(service, HORIZON_WINDOWS)
    while not service.resolved():
        service.tick()
    return service.finalize()


def sim_rows(service):
    """Assignment log projected onto its simulation-domain fields.

    ``latency_wall_s`` is deliberately excluded: wall latency is a serving
    measurement, not reproducible state, and recovery restores it as None.
    """
    return [
        (
            a["rider_id"],
            a["driver_id"],
            a["assign_time_s"],
            a["pickup_eta_s"],
            a["pickup_time_s"],
        )
        for a in service.assignments()
    ]


def batch_series(service):
    return [
        (b.time_s, b.waiting_riders, b.available_drivers, b.assignments)
        for b in service.stepper.metrics.batches
    ]


@pytest.fixture(scope="module")
def baseline():
    """The uninterrupted day, no WAL: the ground truth to recover to."""
    service = DispatchService.from_config(CONFIG, POLICY)
    economics = finish(service)
    assert economics["served_orders"] > 0
    return {
        "economics": economics,
        "rows": sim_rows(service),
        "series": batch_series(service),
    }


@pytest.fixture(scope="module")
def midday(tmp_path_factory):
    """A WAL abandoned mid-day, as a ``kill -9`` at window CRASH_WINDOW
    would leave it (``fsync=batch``: every record already flushed, no
    clean shutdown)."""
    wal_path = tmp_path_factory.mktemp("midday") / "dispatch.wal"
    service = DispatchService.from_config(CONFIG, POLICY, wal_path=wal_path)
    drive(service, CRASH_WINDOW)
    rows = sim_rows(service)
    assert rows, "crash point must land after some assignments"
    # No close(), no finalize: the process just stops existing.
    return {"wal": wal_path, "rows": rows}


def _copy(midday, tmp_path):
    path = tmp_path / "dispatch.wal"
    shutil.copy(midday["wal"], path)
    return path


def _rewrite(records, path):
    """Write a record list as a fresh, well-formed log (for tampering)."""
    with WriteAheadLog(path, fsync="never") as wal:
        for record in records:
            wal.append(record)
    return path


def test_recover_midday_and_finish_is_bit_identical(midday, baseline, tmp_path):
    wal_path = _copy(midday, tmp_path)
    service, report = DispatchService.recover(wal_path, CONFIG, POLICY)

    assert report.ticks == CRASH_WINDOW
    assert report.torn_bytes == 0
    assert report.requests > 0
    assert not report.finalized
    assert report.resumed
    assert report.assignments == len(midday["rows"])
    # The rebuilt state is exactly the crashed service's state.
    assert sim_rows(service) == midday["rows"]
    assert service.stepper.next_batch_index == CRASH_WINDOW

    status = service.status()
    assert status["recovered"]["ticks"] == CRASH_WINDOW
    assert status["wal"]["path"] == str(wal_path)

    # Finish the day: recovered == never-crashed, bit for bit.
    economics = finish(service)
    assert economics == baseline["economics"]
    assert sim_rows(service) == baseline["rows"]
    assert batch_series(service) == baseline["series"]

    # finalize() is idempotent in the log too: exactly one record.
    service.finalize()
    service.close()
    records = read_wal(wal_path).records
    assert sum(r["type"] == "finalize" for r in records) == 1

    # The resumed log now holds the whole day and recovers again.
    replayed, second = DispatchService.recover(
        wal_path, CONFIG, POLICY, resume=False
    )
    assert second.finalized
    assert not second.resumed
    assert sim_rows(replayed) == baseline["rows"]
    assert replayed.finalize() == baseline["economics"]


def test_torn_tail_is_truncated_before_replay(midday, tmp_path):
    wal_path = _copy(midday, tmp_path)
    with open(wal_path, "ab") as handle:
        # A frame whose payload never made it to disk.
        handle.write(struct.pack("<II", 512, 0) + b"partial")

    service, report = DispatchService.recover(
        wal_path, CONFIG, POLICY, resume=False
    )
    assert report.torn_bytes == 15
    assert report.ticks == CRASH_WINDOW
    assert sim_rows(service) == midday["rows"]
    # The truncation is physical: the file itself is clean again.
    assert read_wal(wal_path).torn_bytes == 0


def test_midlog_corruption_refuses_recovery(midday, tmp_path):
    wal_path = _copy(midday, tmp_path)
    data = bytearray(wal_path.read_bytes())
    first_len = struct.unpack_from("<I", data, 0)[0]
    data[8 + first_len + 8] ^= 0xFF  # second record's first payload byte
    wal_path.write_bytes(bytes(data))

    with pytest.raises(WalCorruptionError):
        DispatchService.recover(wal_path, CONFIG, POLICY)


def test_fingerprint_mismatch_refuses_recovery(midday, tmp_path):
    wal_path = _copy(midday, tmp_path)
    with pytest.raises(WalError, match="fingerprint mismatch"):
        DispatchService.recover(wal_path, CONFIG, "IRG-R")
    import dataclasses

    other = dataclasses.replace(CONFIG, num_drivers=CONFIG.num_drivers + 1)
    with pytest.raises(WalError, match="fingerprint mismatch"):
        DispatchService.recover(wal_path, other, POLICY)


def test_tampered_assignment_is_a_replay_error(midday, tmp_path):
    records = read_wal(midday["wal"]).records
    tampered = []
    done = False
    for record in records:
        if not done and record.get("type") == "tick" and record["assignments"]:
            record = dict(record)
            rows = [list(row) for row in record["assignments"]]
            rows[0][1] += 1  # a driver the policy did not pick
            record["assignments"] = rows
            done = True
        tampered.append(record)
    assert done
    wal_path = _rewrite(tampered, tmp_path / "tampered.wal")

    with pytest.raises(WalReplayError, match="diverge"):
        DispatchService.recover(wal_path, CONFIG, POLICY)


def test_duplicate_request_records_replay_idempotently(midday, tmp_path):
    """A client retry that got logged twice must not double-ingest."""
    records = read_wal(midday["wal"]).records
    doubled = []
    for record in records:
        doubled.append(record)
        if record.get("type") == "request" and len(doubled) < 10:
            doubled.append(record)  # replay the ack-lost retry verbatim
    assert len(doubled) > len(records)
    wal_path = _rewrite(doubled, tmp_path / "doubled.wal")

    service, report = DispatchService.recover(
        wal_path, CONFIG, POLICY, resume=False
    )
    assert report.ticks == CRASH_WINDOW
    assert sim_rows(service) == midday["rows"]


def test_empty_log_recovers_to_a_fresh_day(tmp_path):
    wal_path = tmp_path / "dispatch.wal"
    wal_path.touch()
    service, report = DispatchService.recover(wal_path, CONFIG, POLICY)
    assert report.records == 0 and report.requests == 0 and report.ticks == 0

    drive(service, 3)
    service.close()
    records = read_wal(wal_path).records
    assert records[0]["type"] == "meta"
    assert sum(r["type"] == "tick" for r in records) == 3


def test_fsync_never_survives_a_clean_close(tmp_path):
    wal_path = tmp_path / "dispatch.wal"
    service = DispatchService.from_config(
        CONFIG, POLICY, wal_path=wal_path, wal_fsync="never"
    )
    drive(service, 60)
    rows = sim_rows(service)
    service.close()  # `never` only guarantees durability on close

    recovered, report = DispatchService.recover(
        wal_path, CONFIG, POLICY, resume=False, fsync="never"
    )
    assert report.ticks == 60
    assert sim_rows(recovered) == rows


def test_attach_refuses_unreplayed_history(midday, tmp_path):
    wal_path = _copy(midday, tmp_path)
    with pytest.raises(WalError, match="without recovery"):
        DispatchService.from_config(CONFIG, POLICY, wal_path=wal_path)


def test_submit_is_idempotent_on_rider_ids():
    service = DispatchService.from_config(CONFIG, POLICY)
    rider = sorted(service.workload, key=lambda r: r.request_time_s)[0]
    first = service.submit_riders([rider])
    assert first["accepted"] == 1 and first["duplicates"] == 0
    again = service.submit_riders([rider, rider])
    assert again["accepted"] == 0 and again["duplicates"] == 2
    assert service.status()["duplicate_requests"] == 2
    assert service.status()["requests_received"] == 1


def test_tick_until_is_idempotent():
    service = DispatchService.from_config(CONFIG, POLICY)
    result = service.tick_until(5)
    assert result["ticks"] == 5 and result["next_batch_index"] == 5
    retry = service.tick_until(5)
    assert retry["ticks"] == 0 and retry["next_batch_index"] == 5
    assert service.tick_until(3)["ticks"] == 0  # never rewinds
