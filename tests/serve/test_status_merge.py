"""Merged ``/status`` semantics: true percentiles, not averaged ones.

The router pools the raw per-shard samples and recomputes every
percentile block, because a percentile of percentiles is not a
percentile.  The hypothesis property pins the algebra: however a sample
set is partitioned across shards, the merged status equals the status of
the pooled set.  A crafted two-shard case shows the naive
average-of-percentiles giving a different (wrong) answer, and an
end-to-end check confirms a live router reports exactly the pooled
figures of its workers.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_serve_world, clear_caches
from repro.serve.router import build_sharded_stack, merge_statuses
from repro.serve.service import _percentile, rider_to_payload

COUNTER_KEYS = (
    "requests_received",
    "waiting",
    "pending",
    "active_drivers",
    "served_orders",
    "reneged_orders",
    "repositions",
    "duplicate_requests",
)


@pytest.fixture(autouse=True, scope="module")
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _status(
    latencies,
    ticks=(),
    counters=None,
    next_batch_index=0,
    waiting_by_region=None,
):
    """A minimal but complete single-shard ``/status?samples=1`` payload."""
    latencies = sorted(latencies)
    ticks = sorted(ticks)
    status = {
        "policy": "NEAR",
        "batch_interval_s": 10.0,
        "sim_time_s": next_batch_index * 10.0,
        "next_batch_index": next_batch_index,
        "uptime_wall_s": 1.0,
        "total_revenue": 0.0,
        "phase_seconds": {"matching": 0.5},
        "ticks": next_batch_index,
        "tick_wall_ms": {
            "p50": 1e3 * _percentile(ticks, 0.50),
            "p99": 1e3 * _percentile(ticks, 0.99),
            "max": 1e3 * (ticks[-1] if ticks else 0.0),
        },
        "tick_gap_wall_ms": {"p50": 0.0, "p99": 0.0, "max": 0.0},
        "assignment_latency_s": {
            "count": len(latencies),
            "p50": _percentile(latencies, 0.50),
            "p99": _percentile(latencies, 0.99),
            "max": latencies[-1] if latencies else 0.0,
        },
        "waiting_by_region": waiting_by_region or {},
        "driver_events": {
            "accepted": 0,
            "duplicates": 0,
            "applied": 0,
            "skipped": 0,
            "pending": 0,
        },
        "shard": None,
        "samples": {
            "assignment_latency_s": latencies,
            "tick_wall_s": ticks,
            "tick_gap_wall_s": [],
        },
    }
    for key in COUNTER_KEYS:
        status[key] = (counters or {}).get(key, 0)
    return status


@st.composite
def partitioned_samples(draw):
    """A pooled sample set and an arbitrary partition of it into shards."""
    samples = draw(
        st.lists(
            st.floats(
                min_value=0.0,
                max_value=1e4,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=0,
            max_size=60,
        )
    )
    num_shards = draw(st.integers(min_value=1, max_value=5))
    owners = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_shards - 1),
            min_size=len(samples),
            max_size=len(samples),
        )
    )
    parts = [[] for _ in range(num_shards)]
    for sample, owner in zip(samples, owners):
        parts[owner].append(sample)
    return samples, parts


@settings(deadline=None, max_examples=200)
@given(partitioned_samples())
def test_merged_percentiles_are_partition_invariant(case):
    pooled, parts = case
    statuses = [_status(part, next_batch_index=i) for i, part in enumerate(parts)]
    merged = merge_statuses(statuses)
    reference = _status(pooled)["assignment_latency_s"]
    assert merged["assignment_latency_s"] == reference
    assert merged["next_batch_index"] == 0  # lockstep consensus is min
    assert merged["ticks"] == len(parts) - 1


@settings(deadline=None, max_examples=100)
@given(
    partitioned_samples(),
    st.lists(
        st.tuples(
            st.sampled_from(COUNTER_KEYS), st.integers(min_value=0, max_value=50)
        ),
        max_size=20,
    ),
)
def test_merged_counters_sum(case, increments):
    _, parts = case
    counters = [dict.fromkeys(COUNTER_KEYS, 0) for _ in parts]
    for i, (key, value) in enumerate(increments):
        counters[i % len(parts)][key] += value
    statuses = [
        _status(part, counters=c) for part, c in zip(parts, counters)
    ]
    merged = merge_statuses(statuses)
    for key in COUNTER_KEYS:
        assert merged[key] == sum(c[key] for c in counters)


def test_average_of_percentiles_would_be_wrong():
    """The canonical counterexample: one fast shard, one slow shard.

    Averaging the two per-shard p99s lands far from the true fleet p99;
    pooling the samples does not.
    """
    fast = [0.1] * 99 + [0.2]
    slow = [10.0] * 10
    merged = merge_statuses([_status(fast), _status(slow)])
    pooled = sorted(fast + slow)
    true_p99 = _percentile(pooled, 0.99)
    averaged_p99 = (
        _percentile(sorted(fast), 0.99) + _percentile(sorted(slow), 0.99)
    ) / 2.0
    assert merged["assignment_latency_s"]["p99"] == true_p99
    assert true_p99 == 10.0
    assert averaged_p99 != true_p99  # ≈ 5.1: understates the tail 2x


def test_waiting_by_region_merges_sparse_maps():
    a = _status([], waiting_by_region={"0": 2, "5": 1})
    b = _status([], waiting_by_region={"5": 3, "8": 4})
    merged = merge_statuses([a, b])
    assert merged["waiting_by_region"] == {0: 2, 5: 4, 8: 4}


def test_statuses_without_samples_are_refused():
    status = _status([1.0])
    del status["samples"]
    with pytest.raises(ValueError, match="samples"):
        merge_statuses([status])
    with pytest.raises(ValueError, match="no shard statuses"):
        merge_statuses([])


def test_live_router_status_equals_pooled_worker_samples():
    """A real 3-shard stack reports exactly its workers' pooled figures."""
    config = ExperimentConfig(
        daily_orders=2_000.0,
        num_drivers=16,
        horizon_s=1_800.0,
        batch_interval_s=10.0,
        space_scale=0.1,
        grid_rows=3,
        grid_cols=3,
    )
    riders, _, _, _, _, _ = build_serve_world(config, "NEAR")
    riders = [r for r in riders if r.request_time_s < 600.0]
    with build_sharded_stack(config, "NEAR", 3) as stack:
        router = stack.router
        router.submit([rider_to_payload(r) for r in riders])
        router.tick_until(60)
        merged = router.status()
        pooled = sorted(
            sample
            for service in stack.services
            for sample in service.status(True)["samples"][
                "assignment_latency_s"
            ]
        )
        assert merged["assignment_latency_s"]["count"] == len(pooled)
        assert len(pooled) > 0
        assert merged["assignment_latency_s"]["p50"] == _percentile(
            pooled, 0.50
        )
        assert merged["assignment_latency_s"]["p99"] == _percentile(
            pooled, 0.99
        )
        assert merged["assignment_latency_s"]["max"] == pooled[-1]
        assert merged["served_orders"] == sum(
            s.status()["served_orders"] for s in stack.services
        )
        assert math.isclose(
            merged["total_revenue"],
            sum(s.status()["total_revenue"] for s in stack.services),
        )
