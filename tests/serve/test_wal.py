"""The write-ahead log record format: framing, checksums, torn tails.

Pure file-format tests — no simulation world is built.  The contract under
test: every intact record reads back exactly; a crash mid-write tears only
the *tail*, which is detected and truncated; corruption anywhere else is a
hard error, never a silent skip.
"""

import struct

import pytest

from repro.serve.wal import (
    FSYNC_POLICIES,
    WalCorruptionError,
    WriteAheadLog,
    read_wal,
    truncate_torn_tail,
)

RECORDS = [
    {"type": "meta", "fingerprint": {"policy": "NEAR", "seed": 7}},
    {"type": "request", "riders": [{"rider_id": 1, "request_time_s": 3.5}]},
    {"type": "tick", "index": 0, "time_s": 0.0, "assignments": []},
    {"type": "tick", "index": 1, "time_s": 10.0, "assignments": [[1, 4, 10.0, 2.5, 12.5, 60.0]]},
    {"type": "finalize"},
]


def write_log(path, records, fsync="batch"):
    with WriteAheadLog(path, fsync=fsync) as wal:
        for record in records:
            wal.append(record, commit=record.get("type") == "tick")
    return path


def test_round_trip_all_fsync_policies(tmp_path):
    for policy in FSYNC_POLICIES:
        path = write_log(tmp_path / f"{policy}.wal", RECORDS, fsync=policy)
        result = read_wal(path)
        assert result.records == RECORDS
        assert result.torn_bytes == 0
        assert result.clean_bytes == path.stat().st_size


def test_fsync_counters(tmp_path):
    wal = WriteAheadLog(tmp_path / "a.wal", fsync="always")
    wal.append({"type": "meta"})
    wal.append({"type": "tick"}, commit=True)
    assert wal.stats()["fsyncs"] == 2
    wal.close()

    wal = WriteAheadLog(tmp_path / "b.wal", fsync="batch")
    wal.append({"type": "meta"})
    wal.append({"type": "tick"}, commit=True)
    assert wal.stats()["fsyncs"] == 1  # only the commit record
    wal.close()

    wal = WriteAheadLog(tmp_path / "c.wal", fsync="never")
    wal.append({"type": "tick"}, commit=True)
    assert wal.stats()["fsyncs"] == 0
    wal.close()
    assert read_wal(tmp_path / "c.wal").records == [{"type": "tick"}]


def test_unknown_fsync_policy_rejected(tmp_path):
    with pytest.raises(ValueError, match="fsync"):
        WriteAheadLog(tmp_path / "x.wal", fsync="sometimes")


def test_empty_log_is_valid(tmp_path):
    path = tmp_path / "empty.wal"
    path.touch()
    result = read_wal(path)
    assert result.records == [] and result.clean_bytes == 0
    assert result.torn_bytes == 0


def test_missing_log_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        read_wal(tmp_path / "nope.wal")


@pytest.mark.parametrize("cut", [1, 4, 7, 9])
def test_torn_tail_truncates_to_last_intact_record(tmp_path, cut):
    """A crash mid-write leaves a partial final frame: header cut short
    (cut < 8) or payload cut short — every case truncates to the intact
    prefix."""
    path = write_log(tmp_path / "torn.wal", RECORDS)
    clean = read_wal(path).clean_bytes
    data = path.read_bytes()
    # Re-append the first record, then cut `cut` bytes into the new frame.
    partial = data[: clean] + data[: cut]
    path.write_bytes(partial)

    result = read_wal(path)
    assert result.records == RECORDS
    assert result.torn_bytes == cut

    repaired = truncate_torn_tail(path)
    assert repaired.torn_bytes == cut
    assert path.stat().st_size == clean
    # Appends resume cleanly after the repair.
    with WriteAheadLog(path) as wal:
        wal.append({"type": "tick", "index": 99})
    assert read_wal(path).records == RECORDS + [{"type": "tick", "index": 99}]


def test_checksum_flip_in_final_record_is_a_torn_tail(tmp_path):
    path = write_log(tmp_path / "flip.wal", RECORDS)
    data = bytearray(path.read_bytes())
    data[-1] ^= 0xFF  # flip a payload byte of the last record
    path.write_bytes(bytes(data))

    result = read_wal(path)
    assert result.records == RECORDS[:-1]
    assert result.torn_bytes > 0
    truncate_torn_tail(path)
    assert read_wal(path).records == RECORDS[:-1]


def test_corrupt_middle_record_is_a_hard_error(tmp_path):
    path = write_log(tmp_path / "mid.wal", RECORDS)
    data = bytearray(path.read_bytes())
    # Find the second record's payload start and flip a byte there.
    first_len = struct.unpack_from("<I", data, 0)[0]
    second_payload_start = 8 + first_len + 8
    data[second_payload_start] ^= 0xFF
    path.write_bytes(bytes(data))

    with pytest.raises(WalCorruptionError, match="intact bytes after"):
        read_wal(path)
    with pytest.raises(WalCorruptionError):
        truncate_torn_tail(path)
    # The file is untouched: corruption is never repaired by guessing.
    assert path.read_bytes() == bytes(data)


def test_garbled_tail_length_reads_as_torn(tmp_path):
    """A garbled length field in the final header makes the payload run
    past EOF — indistinguishable from a torn write, so it truncates."""
    path = write_log(tmp_path / "len.wal", RECORDS)
    clean = read_wal(path).clean_bytes
    with open(path, "ab") as handle:
        handle.write(struct.pack("<II", 1 << 30, 0) + b"short")

    result = read_wal(path)
    assert result.records == RECORDS
    assert result.clean_bytes == clean


def test_stats_shape(tmp_path):
    wal = WriteAheadLog(tmp_path / "s.wal", fsync="batch")
    wal.append({"type": "meta"})
    stats = wal.stats()
    assert stats["records_appended"] == 1
    assert stats["bytes_appended"] == stats["file_bytes"] > 0
    assert stats["fsync"] == "batch"
    wal.close()
