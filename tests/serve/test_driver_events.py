"""First-class driver wire events: join / leave / relocate.

Supply-side changes ride the same event machinery as ride requests — a
heap of ``(time_s, seq, event)`` drained at the head of the first tick at
or after each event's time.  These tests pin the stepper semantics
(validation, application order, rejoin, skip accounting, fleet
consistency) and the service layer on top (idempotent ``POST /drivers``,
WAL logging, replay on recovery).
"""

import math

import pytest

from repro.dispatch import NearestPolicy
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import clear_caches
from repro.geo import BoundingBox, GeoPoint, GridPartition
from repro.roadnet.travel_time import StraightLineCost
from repro.serve.service import DispatchService
from repro.sim.demand import OracleDemand
from repro.sim.engine import SimConfig
from repro.sim.entities import Driver, Rider
from repro.sim.stepper import SimulationStepper

BOX = BoundingBox(0.0, 0.0, 0.02, 0.02)
GRID = GridPartition(BOX, rows=2, cols=2)
COST = StraightLineCost(speed_mps=10.0, metric="euclidean")
CENTRE = GeoPoint(0.005, 0.005)  # region 0


@pytest.fixture(autouse=True, scope="module")
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _rider(rider_id, t, wait=600.0):
    pickup = CENTRE
    dropoff = GeoPoint(0.015, 0.005)
    trip = COST.travel_seconds(pickup, dropoff)
    return Rider(
        rider_id=rider_id, request_time_s=t, pickup=pickup, dropoff=dropoff,
        deadline_s=t + wait, trip_seconds=trip, revenue=trip,
        origin_region=0, destination_region=1,
    )


def _stepper(drivers, riders=()):
    return SimulationStepper(
        drivers,
        GRID,
        COST,
        NearestPolicy(),
        SimConfig(batch_interval_s=10.0, tc_seconds=600.0, horizon_s=3600.0),
        demand=OracleDemand(list(riders), GRID.num_regions),
    )


class TestStepperIngest:
    def test_events_apply_at_their_tick_not_before(self):
        stepper = _stepper([])
        assert stepper.ingest_drivers(
            [
                {
                    "event": "join",
                    "driver_id": 1,
                    "time_s": 25.0,
                    "position": [0.005, 0.005],
                }
            ]
        ) == 1
        stepper.step(0.0)
        stepper.step(10.0)
        stepper.step(20.0)
        assert stepper.driver_events_applied == 0
        assert stepper.pending_driver_events == 1
        stepper.step(30.0)
        assert stepper.driver_events_applied == 1
        assert stepper.pending_driver_events == 0
        listing = stepper.driver_listing()
        assert [d["driver_id"] for d in listing] == [1]
        assert listing[0]["on_shift"] and listing[0]["idle"]

    def test_rejected_batch_leaves_the_heap_untouched(self):
        """Validation is all-or-nothing: one bad event rejects the batch."""
        stepper = _stepper([])
        good = {
            "event": "join",
            "driver_id": 1,
            "time_s": 0.0,
            "position": [0.005, 0.005],
        }
        with pytest.raises(ValueError):
            stepper.ingest_drivers(
                [good, {"event": "leave", "driver_id": 99, "time_s": 5.0}]
            )
        assert stepper.pending_driver_events == 0

    def test_leave_of_pending_join_is_accepted(self):
        """A leave may reference a driver whose join is still queued."""
        stepper = _stepper([])
        accepted = stepper.ingest_drivers(
            [
                {
                    "event": "join",
                    "driver_id": 5,
                    "time_s": 0.0,
                    "position": [0.005, 0.005],
                },
                {"event": "leave", "driver_id": 5, "time_s": 30.0},
            ]
        )
        assert accepted == 2
        stepper.step(0.0)
        assert stepper.driver_listing()[0]["leave_time_s"] is None
        stepper.step(30.0)
        assert stepper.driver_events_applied == 2
        assert stepper.driver_listing()[0]["on_shift"] is False

    def test_join_with_inverted_shift_is_rejected(self):
        stepper = _stepper([])
        with pytest.raises(ValueError):
            stepper.ingest_drivers(
                [
                    {
                        "event": "join",
                        "driver_id": 1,
                        "time_s": 100.0,
                        "leave_time_s": 50.0,
                        "position": [0.005, 0.005],
                    }
                ]
            )

    def test_unknown_event_kind_is_rejected(self):
        stepper = _stepper([])
        with pytest.raises(ValueError):
            stepper.ingest_drivers(
                [{"event": "teleport", "driver_id": 1, "time_s": 0.0}]
            )

    def test_relocate_moves_an_idle_driver_between_regions(self):
        driver = Driver(1, CENTRE, 0)
        stepper = _stepper([driver])
        stepper.ingest_drivers(
            [
                {
                    "event": "relocate",
                    "driver_id": 1,
                    "time_s": 10.0,
                    "position": [0.015, 0.015],
                }
            ]
        )
        stepper.step(0.0)
        assert stepper.driver_listing()[0]["region"] == 0
        stepper.step(10.0)
        entry = stepper.driver_listing()[0]
        assert entry["region"] == GRID.region_of(GeoPoint(0.015, 0.015))
        assert stepper.driver_events_applied == 1
        stepper.fleet.check_consistency(stepper.drivers, 10.0)

    def test_relocate_of_busy_driver_is_skipped(self):
        driver = Driver(1, CENTRE, 0)
        stepper = _stepper([driver], [_rider(0, 0.0)])
        stepper.ingest([_rider(0, 0.0)])
        stepper.step(0.0)  # rider assigned; driver now mid-trip
        stepper.ingest_drivers(
            [
                {
                    "event": "relocate",
                    "driver_id": 1,
                    "time_s": 10.0,
                    "position": [0.015, 0.015],
                }
            ]
        )
        stepper.step(10.0)
        assert stepper.driver_events_applied == 0
        assert stepper.driver_events_skipped == 1

    def test_joined_driver_serves_riders(self):
        """A wire-joined driver is indistinguishable from an initial one."""
        stepper = _stepper([], [_rider(0, 30.0)])
        stepper.ingest_drivers(
            [
                {
                    "event": "join",
                    "driver_id": 42,
                    "time_s": 0.0,
                    "position": [CENTRE.lon, CENTRE.lat],
                }
            ]
        )
        stepper.ingest([_rider(0, 30.0)])
        for k in range(6):
            stepper.step(k * 10.0)
        assert stepper.metrics.served_orders + len(stepper._waiting) >= 1
        rider = stepper.rider(0)
        assert rider.driver_id == 42

    def test_migration_round_trip_rejoins_the_same_driver(self):
        """leave → join of the same id re-arms the shift (the router's
        cross-shard migration applied to one shard's donor side)."""
        driver = Driver(1, CENTRE, 0)
        stepper = _stepper([driver])
        stepper.ingest_drivers(
            [
                {"event": "leave", "driver_id": 1, "time_s": 20.0},
                {
                    "event": "join",
                    "driver_id": 1,
                    "time_s": 40.0,
                    "position": [0.015, 0.015],
                },
            ]
        )
        stepper.step(20.0)
        assert stepper.driver_listing()[0]["on_shift"] is False
        stepper.step(40.0)
        entry = stepper.driver_listing()[0]
        assert entry["on_shift"] is True
        assert entry["region"] == GRID.region_of(GeoPoint(0.015, 0.015))
        assert math.isinf(stepper.drivers[0].leave_time_s) or (
            stepper.drivers[0].leave_time_s > 40.0
        )
        assert stepper.driver_events_applied == 2
        assert stepper.driver_events_skipped == 0
        stepper.fleet.check_consistency(stepper.drivers, 40.0)

    def test_join_of_on_duty_driver_is_skipped(self):
        driver = Driver(1, CENTRE, 0)
        stepper = _stepper([driver])
        stepper.ingest_drivers(
            [
                {
                    "event": "join",
                    "driver_id": 1,
                    "time_s": 10.0,
                    "position": [0.015, 0.015],
                }
            ]
        )
        stepper.step(10.0)
        assert stepper.driver_events_applied == 0
        assert stepper.driver_events_skipped == 1
        # The still-on-duty driver keeps its original position.
        assert stepper.driver_listing()[0]["region"] == 0


SERVICE_CONFIG = ExperimentConfig(
    daily_orders=2_000.0,
    num_drivers=16,
    horizon_s=3_600.0,
    batch_interval_s=10.0,
    space_scale=0.1,
    grid_rows=3,
    grid_cols=3,
)


def _join(driver_id, t, lon, lat, leave=None):
    event = {
        "event": "join",
        "driver_id": driver_id,
        "time_s": t,
        "position": [lon, lat],
    }
    if leave is not None:
        event["leave_time_s"] = leave
    return event


class TestServiceLayer:
    def test_submit_drivers_is_idempotent(self):
        service = DispatchService.from_config(SERVICE_CONFIG, "NEAR")
        try:
            grid = service.stepper.grid
            centre = grid.center_of(4)
            event = _join(9_001, 0.0, centre.lon, centre.lat)
            first = service.submit_drivers(event)
            assert (first["accepted"], first["duplicates"]) == (1, 0)
            again = service.submit_drivers(event)
            assert (again["accepted"], again["duplicates"]) == (0, 1)
            assert service.status()["driver_events"]["pending"] == 1
        finally:
            service.close()

    def test_malformed_event_is_a_value_error(self):
        service = DispatchService.from_config(SERVICE_CONFIG, "NEAR")
        try:
            with pytest.raises(ValueError, match="malformed driver event"):
                service.submit_drivers({"event": "join", "driver_id": 1})
        finally:
            service.close()

    def test_driver_events_are_wal_logged_and_replayed(self, tmp_path):
        wal_path = tmp_path / "dispatch.wal"
        service = DispatchService.from_config(
            SERVICE_CONFIG, "NEAR", wal_path=wal_path, wal_fsync="never"
        )
        grid = service.stepper.grid
        centre = grid.center_of(4)
        service.submit_drivers(
            [
                _join(9_001, 0.0, centre.lon, centre.lat),
                {
                    "event": "relocate",
                    "driver_id": 9_001,
                    "time_s": 20.0,
                    "position": [centre.lon, centre.lat],
                },
                {"event": "leave", "driver_id": 9_001, "time_s": 40.0},
            ]
        )
        service.tick(6)  # through t = 50 s: all three events applied
        before = service.status()["driver_events"]
        assert before["applied"] == 3
        listing = {d["driver_id"]: d for d in service.drivers()}
        service.close()

        recovered, report = DispatchService.recover(
            wal_path, SERVICE_CONFIG, "NEAR", fsync="never"
        )
        try:
            assert report.driver_events == 3
            after = recovered.status()["driver_events"]
            assert after["applied"] == before["applied"]
            assert after["pending"] == before["pending"]
            replayed = {d["driver_id"]: d for d in recovered.drivers()}
            assert replayed == listing
            # Replay is idempotent against double-submission too.
            again = recovered.submit_drivers(
                _join(9_001, 0.0, centre.lon, centre.lat)
            )
            assert (again["accepted"], again["duplicates"]) == (0, 1)
        finally:
            recovered.close()
