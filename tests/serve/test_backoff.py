"""Decorrelated-jitter retry backoff for :class:`ServeClient`.

The old backoff was a bare exponential with no jitter: every client that
lost the same server slept the same schedule and reconnected in
synchronized waves.  The replacement draws ``uniform(base, 3 * prev)``
capped at the ceiling — these tests pin the bounds, the ramp, the cap,
and that distinct clients really do get distinct schedules.
"""

import random

from repro.serve.loadgen import ServeClient, decorrelated_backoff

BASE = 0.05
CAP = 1.0


def test_delays_stay_within_bounds():
    rng = random.Random(1234)
    prev = 0.0
    for _ in range(500):
        delay = decorrelated_backoff(rng, BASE, prev, CAP)
        assert BASE <= delay <= CAP
        prev = delay


def test_first_retry_is_bounded_by_three_times_base():
    rng = random.Random(7)
    for _ in range(200):
        assert BASE <= decorrelated_backoff(rng, BASE, 0.0, CAP) <= 3 * BASE


def test_ramp_is_bounded_by_three_times_previous():
    rng = random.Random(99)
    prev = BASE
    for _ in range(200):
        delay = decorrelated_backoff(rng, BASE, prev, CAP)
        assert delay <= max(BASE, min(CAP, 3.0 * prev))
        prev = delay


def test_cap_binds_even_for_huge_previous_delay():
    rng = random.Random(5)
    for _ in range(100):
        assert decorrelated_backoff(rng, BASE, 1e9, CAP) <= CAP


def test_seeded_rng_gives_a_deterministic_schedule():
    def schedule(seed):
        rng = random.Random(seed)
        prev, out = 0.0, []
        for _ in range(16):
            prev = decorrelated_backoff(rng, BASE, prev, CAP)
            out.append(prev)
        return out

    assert schedule(42) == schedule(42)
    assert schedule(42) != schedule(43)


def test_clients_do_not_share_a_schedule():
    """Two clients retrying concurrently must spread out, not march in
    lockstep — the decorrelation that motivates the jitter."""

    def client_schedule(seed):
        client = ServeClient(
            "127.0.0.1", 1, backoff_rng=random.Random(seed)
        )
        prev, out = 0.0, []
        for _ in range(8):
            prev = client.next_backoff(prev)
            out.append(prev)
        client.close()
        return out

    a = client_schedule(1)
    b = client_schedule(2)
    assert a != b
    for delay in a + b:
        assert BASE <= delay <= CAP
