"""Array-native LS / SHORT kernels must match the scalar references bit for bit.

The scalar per-pair implementations (``local_search``,
``shortest_total_time_greedy``) are the golden references; the array
entry points consume the same batch flattened into per-pair arrays and
must return identical :class:`~repro.core.batch_types.SelectedPair`
lists — same pairs, same selection/sweep order, same float values
(``==``, never approx), the same final-rates ``predicted_idle_s``
refresh, and the same ``converged`` flag.  Randomised batches are drawn
with heavy value collisions (tiny choice sets for trip costs and ETAs)
so tie-breaking order is exercised, not just the generic case.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch_types import BatchDriver, BatchRider, CandidatePair, SelectedPair
from repro.core.irg import idle_ratio_greedy, idle_ratio_greedy_arrays
from repro.core.local_search import local_search, local_search_arrays
from repro.core.rates import RegionRates
from repro.core.short_greedy import (
    shortest_total_time_greedy,
    shortest_total_time_greedy_arrays,
)

#: Few distinct values → frequent exact key ties → the tie-break paths run.
TRIP_CHOICES = (0.0, 120.0, 120.0, 480.0, 900.0)
ETA_CHOICES = (0.0, 5.0, 30.0)


@st.composite
def batches(draw):
    num_regions = draw(st.integers(1, 4))
    num_riders = draw(st.integers(1, 12))
    num_drivers = draw(st.integers(1, 8))
    riders = [
        BatchRider(
            index=100 + i,
            origin_region=draw(st.integers(0, num_regions - 1)),
            destination_region=draw(st.integers(0, num_regions - 1)),
            trip_cost_s=draw(st.sampled_from(TRIP_CHOICES)),
            revenue=1.0,
        )
        for i in range(num_riders)
    ]
    drivers = [
        BatchDriver(index=500 + j, region=draw(st.integers(0, num_regions - 1)))
        for j in range(num_drivers)
    ]
    pairs = [
        CandidatePair(
            rider=r.index,
            driver=d.index,
            pickup_eta_s=draw(st.sampled_from(ETA_CHOICES)),
        )
        for r in riders
        for d in drivers
        if draw(st.booleans())
    ]
    rates_args = dict(
        waiting_riders=[draw(st.integers(0, 3)) for _ in range(num_regions)],
        available_drivers=[draw(st.integers(0, 2)) for _ in range(num_regions)],
        predicted_riders=[
            draw(st.sampled_from((0.0, 0.5, 4.0, 12.0))) for _ in range(num_regions)
        ],
        predicted_drivers=[
            draw(st.sampled_from((0.0, 1.0, 3.0))) for _ in range(num_regions)
        ],
        tc_seconds=1200.0,
        beta=0.05,
    )
    include_pickup = draw(st.booleans())
    return riders, drivers, pairs, rates_args, include_pickup


def _flatten(riders, pairs):
    rider_by = {r.index: r for r in riders}
    rider_ids = np.array([p.rider for p in pairs], dtype=np.int64)
    driver_ids = np.array([p.driver for p in pairs], dtype=np.int64)
    trip = np.array([rider_by[p.rider].trip_cost_s for p in pairs], dtype=float)
    eta = np.array([p.pickup_eta_s for p in pairs], dtype=float)
    dest = np.array(
        [rider_by[p.rider].destination_region for p in pairs], dtype=np.int64
    )
    return rider_ids, driver_ids, trip, eta, dest


def assert_pairs_identical(scalar, arrays):
    assert len(scalar) == len(arrays)
    for a, b in zip(scalar, arrays):
        assert a.rider == b.rider
        assert a.driver == b.driver
        assert a.pickup_eta_s == b.pickup_eta_s
        assert a.predicted_idle_s == b.predicted_idle_s  # exact, not approx


#: Tiny caps force the cap-hit path; 16 lets tie cycles terminate via the
#: revisit detector.  Both flow through `converged`, which must agree.
SWEEP_CAPS = st.sampled_from((1, 2, 16))


@pytest.mark.parametrize("sweep", ["speculative", "sequential"])
@settings(max_examples=120, deadline=None)
@given(batches(), SWEEP_CAPS)
def test_local_search_arrays_equivalent(sweep, batch, max_sweeps):
    riders, drivers, pairs, rates_args, include_pickup = batch
    scalar = local_search(
        riders, drivers, pairs, RegionRates(**rates_args),
        max_sweeps=max_sweeps, include_pickup=include_pickup,
    )
    rates_arr = RegionRates(**rates_args)
    arrays = local_search_arrays(
        *_flatten(riders, pairs), rates_arr,
        max_sweeps=max_sweeps, include_pickup=include_pickup, sweep=sweep,
    )
    assert_pairs_identical(scalar, arrays)
    assert scalar.converged == arrays.converged


@settings(max_examples=120, deadline=None)
@given(batches(), SWEEP_CAPS)
def test_speculative_and_sequential_sweeps_identical(batch, max_sweeps):
    """The triple pin, arrays side: the speculative batch sweep must track
    the sequential per-driver sweep exactly — pairs, ``converged``, and the
    mutated end state of ``rates`` (the policy reads ET off it afterwards).
    Together with the scalar-vs-arrays tests this closes the
    speculative ≡ sequential ≡ scalar triangle."""
    riders, drivers, pairs, rates_args, include_pickup = batch
    flat = _flatten(riders, pairs)
    rates_seq = RegionRates(**rates_args)
    sequential = local_search_arrays(
        *flat, rates_seq,
        max_sweeps=max_sweeps, include_pickup=include_pickup,
        sweep="sequential",
    )
    rates_spec = RegionRates(**rates_args)
    speculative = local_search_arrays(
        *flat, rates_spec,
        max_sweeps=max_sweeps, include_pickup=include_pickup,
        sweep="speculative",
    )
    assert_pairs_identical(sequential, speculative)
    assert sequential.converged == speculative.converged
    for k in range(len(rates_args["waiting_riders"])):
        assert rates_seq.version(k) == rates_spec.version(k)
        assert rates_seq.expected_idle_time(k) == rates_spec.expected_idle_time(k)


@pytest.mark.parametrize("sweep", ["speculative", "sequential"])
@settings(max_examples=120, deadline=None)
@given(batches())
def test_local_search_arrays_equivalent_with_initial(sweep, batch):
    """Seeding both paths from the same explicit assignment (Alg. 3's
    ``initial`` contract: rates already reflect it)."""
    riders, drivers, pairs, rates_args, include_pickup = batch
    rider_by = {r.index: r for r in riders}

    def greedy_initial(rates):
        # A deliberately myopic starting point: first pair per free
        # rider/driver in enumeration order.
        taken_r, taken_d, initial = set(), set(), []
        for p in pairs:
            if p.rider in taken_r or p.driver in taken_d:
                continue
            taken_r.add(p.rider)
            taken_d.add(p.driver)
            rates.on_assignment(rider_by[p.rider].destination_region)
            initial.append(
                SelectedPair(
                    rider=p.rider, driver=p.driver,
                    pickup_eta_s=p.pickup_eta_s, predicted_idle_s=0.0,
                )
            )
        return initial

    rates_s = RegionRates(**rates_args)
    scalar = local_search(
        riders, drivers, pairs, rates_s, initial=greedy_initial(rates_s),
        max_sweeps=16, include_pickup=include_pickup,
    )
    rates_a = RegionRates(**rates_args)
    arrays = local_search_arrays(
        *_flatten(riders, pairs), rates_a, initial=greedy_initial(rates_a),
        max_sweeps=16, include_pickup=include_pickup, sweep=sweep,
    )
    assert_pairs_identical(scalar, arrays)
    assert scalar.converged == arrays.converged


@settings(max_examples=120, deadline=None)
@given(batches())
def test_short_greedy_arrays_equivalent(batch):
    riders, drivers, pairs, rates_args, include_pickup = batch
    scalar = shortest_total_time_greedy(
        riders, drivers, pairs, RegionRates(**rates_args),
        include_pickup=include_pickup,
    )
    arrays = shortest_total_time_greedy_arrays(
        *_flatten(riders, pairs), RegionRates(**rates_args),
        include_pickup=include_pickup,
    )
    assert_pairs_identical(scalar, arrays)


@settings(max_examples=60, deadline=None)
@given(batches())
def test_irg_arrays_equivalent(batch):
    """The pre-existing IRG pair (object path delegates to arrays) stays
    covered by the same randomized harness."""
    riders, drivers, pairs, rates_args, include_pickup = batch
    scalar = idle_ratio_greedy(
        riders, drivers, pairs, RegionRates(**rates_args),
        include_pickup=include_pickup,
    )
    arrays = idle_ratio_greedy_arrays(
        *_flatten(riders, pairs), RegionRates(**rates_args),
        include_pickup=include_pickup,
    )
    assert_pairs_identical(scalar, arrays)


@pytest.mark.parametrize("sweep", ["speculative", "sequential"])
def test_final_rates_mutations_identical(sweep):
    """Both LS paths leave `rates` itself in the same state (the policy
    reads ET off the mutated rates after the batch)."""
    rng = np.random.default_rng(5)
    riders = [
        BatchRider(100 + i, int(rng.integers(3)), int(rng.integers(3)),
                   float(rng.choice(TRIP_CHOICES)), 1.0)
        for i in range(10)
    ]
    drivers = [BatchDriver(500 + j, int(rng.integers(3))) for j in range(5)]
    pairs = [
        CandidatePair(r.index, d.index, float(rng.choice(ETA_CHOICES)))
        for r in riders for d in drivers if rng.random() < 0.6
    ]
    args = dict(
        waiting_riders=[1, 0, 2], available_drivers=[0, 1, 0],
        predicted_riders=[6.0, 0.5, 11.0], predicted_drivers=[1.0, 2.0, 0.0],
        tc_seconds=1200.0, beta=0.05,
    )
    rates_s = RegionRates(**args)
    local_search(riders, drivers, pairs, rates_s, max_sweeps=16)
    rates_a = RegionRates(**args)
    local_search_arrays(
        *_flatten(riders, pairs), rates_a, max_sweeps=16, sweep=sweep
    )
    for k in range(3):
        assert rates_s.mu(k) == rates_a.mu(k)
        assert rates_s.version(k) == rates_a.version(k)
        assert rates_s.expected_idle_time(k) == rates_a.expected_idle_time(k)
