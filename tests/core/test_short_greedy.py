"""Tests of the SHORT algorithm (Appendix C)."""

import pytest

from repro.core.batch_types import BatchDriver, BatchRider, CandidatePair
from repro.core.rates import RegionRates
from repro.core.short_greedy import shortest_total_time_greedy


def make_rates(pred_r, pred_d):
    n = len(pred_r)
    return RegionRates(
        waiting_riders=[0] * n,
        available_drivers=[0] * n,
        predicted_riders=pred_r,
        predicted_drivers=pred_d,
        tc_seconds=1200.0,
        beta=0.05,
    )


class TestShortGreedy:
    def test_prefers_shorter_trip_same_destination(self):
        """Opposite of IRG's rule a: SHORT picks the quicker service round."""
        riders = [
            BatchRider(0, 0, 0, 900.0, 900.0),
            BatchRider(1, 0, 0, 150.0, 150.0),
        ]
        drivers = [BatchDriver(0, 0)]
        pairs = [CandidatePair(0, 0, 5.0), CandidatePair(1, 0, 5.0)]
        out = shortest_total_time_greedy(riders, drivers, pairs, make_rates([10.0], [1.0]))
        assert out[0].rider == 1

    def test_prefers_hot_destination_same_cost(self):
        """Like IRG, SHORT still prefers destinations with short idle."""
        rates = make_rates([30.0, 1.0], [1.0, 1.0])
        riders = [
            BatchRider(0, 0, 0, 300.0, 300.0),
            BatchRider(1, 0, 1, 300.0, 300.0),
        ]
        drivers = [BatchDriver(0, 0)]
        pairs = [CandidatePair(0, 0, 5.0), CandidatePair(1, 0, 5.0)]
        out = shortest_total_time_greedy(riders, drivers, pairs, rates)
        assert out[0].rider == 0

    def test_matching_validity(self):
        riders = [BatchRider(i, 0, 0, 100.0 * (i + 1), 100.0) for i in range(5)]
        drivers = [BatchDriver(j, 0) for j in range(3)]
        pairs = [CandidatePair(i, j, 1.0) for i in range(5) for j in range(3)]
        out = shortest_total_time_greedy(riders, drivers, pairs, make_rates([8.0], [1.0]))
        assert len(out) == 3
        assert len({p.rider for p in out}) == 3
        assert len({p.driver for p in out}) == 3

    def test_mu_feedback(self):
        rates = make_rates([8.0, 8.0], [1.0, 1.0])
        before = rates.mu(1)
        riders = [BatchRider(0, 0, 1, 100.0, 100.0)]
        drivers = [BatchDriver(0, 0)]
        shortest_total_time_greedy(riders, drivers, [CandidatePair(0, 0, 1.0)], rates)
        assert rates.mu(1) == pytest.approx(before + 1.0 / 20.0)

    def test_unknown_references_rejected(self):
        with pytest.raises(ValueError):
            shortest_total_time_greedy(
                [BatchRider(0, 0, 0, 1.0, 1.0)],
                [BatchDriver(0, 0)],
                [CandidatePair(9, 0, 1.0)],
                make_rates([1.0], [1.0]),
            )
