"""Tests of the rate estimation (Eqs. 18–19) and region rate state."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rates import RegionRates, estimate_rates


class TestEstimateRates:
    def test_more_drivers_branch(self):
        """|R_k| <= |D_k|: lam from predictions only, surplus feeds mu.

        Rates come back per minute (the paper's §4 unit): a 600-second
        window is 10 minutes.
        """
        est = estimate_rates(
            waiting_riders=2,
            available_drivers=5,
            predicted_riders=12.0,
            predicted_drivers=4.0,
            tc_seconds=600.0,
        )
        assert est.lam == pytest.approx(12.0 / 10.0)
        assert est.mu == pytest.approx((4.0 + 5 - 2) / 10.0)

    def test_more_riders_branch(self):
        """|R_k| > |D_k|: backlog feeds lam, mu from predictions only."""
        est = estimate_rates(
            waiting_riders=9,
            available_drivers=4,
            predicted_riders=12.0,
            predicted_drivers=5.0,
            tc_seconds=600.0,
        )
        assert est.lam == pytest.approx((12.0 + 9 - 4) / 10.0)
        assert est.mu == pytest.approx(5.0 / 10.0)

    def test_equal_counts_use_drivers_branch(self):
        est = estimate_rates(3, 3, 6.0, 2.0, 600.0)
        assert est.lam == pytest.approx(6.0 / 10.0)
        assert est.mu == pytest.approx(2.0 / 10.0)

    def test_max_drivers_is_total_supply(self):
        est = estimate_rates(1, 4, 3.0, 2.5, 600.0)
        assert est.max_drivers == 7  # 4 present + ceil(2.5) predicted

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            estimate_rates(1, 1, 1.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            estimate_rates(-1, 1, 1.0, 1.0, 60.0)
        with pytest.raises(ValueError):
            estimate_rates(1, 1, -1.0, 1.0, 60.0)


@settings(max_examples=80, deadline=None)
@given(
    waiting=st.integers(min_value=0, max_value=50),
    available=st.integers(min_value=0, max_value=50),
    pred_r=st.floats(min_value=0, max_value=100),
    pred_d=st.floats(min_value=0, max_value=100),
)
def test_property_rates_non_negative(waiting, available, pred_r, pred_d):
    """Both branch outputs are always valid non-negative rates."""
    est = estimate_rates(waiting, available, pred_r, pred_d, 600.0)
    assert est.lam >= 0.0
    assert est.mu >= 0.0
    assert est.max_drivers >= available


class TestRegionRates:
    def _rates(self) -> RegionRates:
        return RegionRates(
            waiting_riders=[3, 0, 5],
            available_drivers=[1, 4, 5],
            predicted_riders=[6.0, 2.0, 10.0],
            predicted_drivers=[2.0, 3.0, 1.0],
            tc_seconds=600.0,
            beta=0.05,
        )

    def test_assignment_feedback_raises_mu(self):
        rates = self._rates()
        before = rates.mu(1)
        rates.on_assignment(1)
        # One extra rejoin over a 10-minute window, in per-minute units.
        assert rates.mu(1) == pytest.approx(before + 1.0 / 10.0)

    def test_assignment_bumps_version(self):
        rates = self._rates()
        v = rates.version(2)
        rates.on_assignment(2)
        assert rates.version(2) == v + 1
        assert rates.version(0) == 0

    def test_unassignment_reverts(self):
        rates = self._rates()
        mu0, k0 = rates.mu(0), rates.max_drivers(0)
        rates.on_assignment(0)
        rates.on_unassignment(0)
        assert rates.mu(0) == pytest.approx(mu0)
        assert rates.max_drivers(0) == k0

    def test_unassignment_never_goes_negative(self):
        rates = RegionRates([5], [0], [1.0], [0.0], 600.0)
        rates.on_unassignment(0)
        assert rates.mu(0) == 0.0
        assert rates.max_drivers(0) == 0

    def test_expected_idle_time_cached_per_version(self):
        rates = self._rates()
        first = rates.expected_idle_time(0)
        assert rates.expected_idle_time(0) == first
        rates.on_assignment(0)
        assert rates.expected_idle_time(0) != first

    def test_more_future_drivers_lengthen_idle(self):
        """Sending drivers to a region makes it less attractive (higher ET)."""
        rates = self._rates()
        before = rates.expected_idle_time(1)
        for _ in range(3):
            rates.on_assignment(1)
        assert rates.expected_idle_time(1) > before

    def test_zero_lambda_region_is_infinitely_unattractive(self):
        rates = RegionRates([0], [2], [0.0], [1.0], 600.0)
        assert rates.expected_idle_time(0) == math.inf

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            RegionRates([1], [1, 2], [1.0], [1.0], 600.0)


class TestUnitConvention:
    """Eq. 4's reneging form fixes the model to per-minute rates (§4).

    These pin the conversion layer: counts + a window in seconds go in,
    per-minute rates drive the queueing model, and ET comes back out in
    seconds.  A per-second evaluation of the same scenario overestimates
    idle times by an order of magnitude (the bug class this guards)."""

    def test_idle_time_band_for_busy_region(self):
        """A region seeing ~1 rider/minute with scarcer drivers should hand
        a rejoining driver a new order within roughly a minute, not tens of
        minutes (riders queue up; ET is dominated by the p(n<=0) tail)."""
        rates = RegionRates(
            waiting_riders=[4],
            available_drivers=[1],
            predicted_riders=[20.0],   # 20 riders over 20 min = 1/min
            predicted_drivers=[10.0],  # 10 rejoins over 20 min = 0.5/min
            tc_seconds=1200.0,
        )
        et = rates.expected_idle_time(0)
        assert 0.0 < et < 120.0

    def test_rates_are_per_minute(self):
        rates = RegionRates([0], [0], [30.0], [15.0], tc_seconds=1800.0)
        assert rates.lam(0) == pytest.approx(1.0)   # 30 riders / 30 min
        assert rates.mu(0) == pytest.approx(0.5)    # 15 rejoins / 30 min

    def test_et_scales_with_lam_not_with_clock_unit(self):
        """The same physical arrival process expressed over a doubled window
        with doubled counts gives identical rates, hence near-identical ET.

        Uses a backlog-free, strongly rider-heavy scenario: with a backlog
        the Eq. 18 fold makes lam window-dependent, and the truncation K
        (which counts predicted rejoins) legitimately grows with the
        window — so the comparison needs theta = mu/lam small enough that
        the K-tail is negligible."""
        a = RegionRates([0], [0], [50.0], [5.0], tc_seconds=600.0)
        b = RegionRates([0], [0], [100.0], [10.0], tc_seconds=1200.0)
        assert a.lam(0) == pytest.approx(b.lam(0))
        assert a.mu(0) == pytest.approx(b.mu(0))
        assert a.expected_idle_time(0) == pytest.approx(
            b.expected_idle_time(0), rel=1e-4
        )

    def test_driver_surplus_region_waits_minutes_not_hours(self):
        """lam < mu: drivers congest; ET grows but stays bounded by the
        truncated queue, landing in the minutes range for these rates."""
        rates = RegionRates(
            waiting_riders=[0],
            available_drivers=[6],
            predicted_riders=[10.0],
            predicted_drivers=[10.0],
            tc_seconds=1200.0,
        )
        et = rates.expected_idle_time(0)
        assert 60.0 < et < 3600.0
