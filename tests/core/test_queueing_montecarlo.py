"""Monte-Carlo validation of the double-sided queueing model (§4).

The closed forms (Eqs. 6–16) are verified against a direct event-level
simulation of the queue they model: riders arrive Poisson(``lam``), drivers
arrive Poisson(``mu``), matching is instantaneous FIFO, waiting riders
renege at the state-dependent total rate ``pi(n) = exp(beta*n)/mu``, and at
most ``K`` drivers can be waiting (the truncation of §4.2.2).

Two quantities are cross-checked:

- the stationary distribution ``p_n`` (time-average of the state), and
- the expected driver idle time ``ET`` (mean realized wait of arriving
  drivers) — by PASTA, driver arrivals see the stationary state, so the
  empirical mean converges to Eq. 10/13/16.
"""

import math

import numpy as np
import pytest

from repro.core.queueing import RegionQueue


class ChainSimulator:
    """Event-level simulation of one region's double-sided queue.

    State ``n`` counts waiting riders (``n > 0``) or waiting drivers
    (``n < 0``).  Driver arrivals beyond the truncation ``-K`` are dropped,
    matching the closed forms' assumption that only ``K`` drivers exist.
    """

    def __init__(self, lam, mu, beta, max_drivers, seed=0):
        self.lam = lam
        self.mu = mu
        self.beta = beta
        self.k = max_drivers
        self.rng = np.random.default_rng(seed)

    def reneging_rate(self, n):
        if n <= 0:
            return 0.0
        return math.exp(self.beta * n) / self.mu

    def run(self, num_events=200_000, burn_in=20_000):
        """Simulate ``num_events`` transitions; return (state_time, waits).

        ``state_time`` maps state -> total time spent; ``waits`` is the
        realized idle time of every driver that arrived after burn-in and
        was eventually matched.
        """
        n = 0
        clock = 0.0
        state_time: dict[int, float] = {}
        # FIFO queue of (arrival_event_index, arrival_clock) waiting drivers.
        waiting_drivers: list[float] = []
        waits: list[float] = []
        # Rider arrival times are needed to settle waits of queued drivers.
        for event in range(num_events):
            rate_rider = self.lam
            rate_driver = self.mu if n > -self.k else 0.0
            rate_renege = self.reneging_rate(n)
            total = rate_rider + rate_driver + rate_renege
            dt = float(self.rng.exponential(1.0 / total))
            if event >= burn_in:
                state_time[n] = state_time.get(n, 0.0) + dt
            clock += dt
            u = float(self.rng.uniform(0.0, total))
            if u < rate_rider:
                # Rider arrival: matched instantly if a driver waits.
                if waiting_drivers:
                    arrived = waiting_drivers.pop(0)
                    if arrived >= 0.0:  # arrived after burn-in
                        waits.append(clock - arrived)
                n += 1
            elif u < rate_rider + rate_driver:
                # Driver arrival: matched instantly if a rider waits.
                if n > 0:
                    if event >= burn_in:
                        waits.append(0.0)
                else:
                    waiting_drivers.append(clock if event >= burn_in else -1.0)
                n -= 1
            else:
                # Reneging rider leaves the queue (only possible for n > 0).
                n -= 1
        return state_time, waits


def _normalised(state_time):
    total = sum(state_time.values())
    return {n: t / total for n, t in state_time.items()}


CASES = [
    pytest.param(2.0, 1.0, 0.05, 10, id="more-riders"),
    pytest.param(1.0, 1.8, 0.05, 6, id="more-drivers"),
    pytest.param(1.5, 1.5, 0.05, 8, id="balanced"),
]


@pytest.mark.parametrize("lam,mu,beta,k", CASES)
def test_stationary_distribution_matches_closed_form(lam, mu, beta, k):
    queue = RegionQueue(lam=lam, mu=mu, beta=beta, max_drivers=k)
    state_time, _ = ChainSimulator(lam, mu, beta, k, seed=11).run()
    empirical = _normalised(state_time)
    # Compare every state carrying noticeable mass; the time-average of a
    # single long trajectory is autocorrelated, so allow statistical slack.
    for n, p_hat in empirical.items():
        if p_hat < 0.02:
            continue
        assert queue.state_probability(n) == pytest.approx(
            p_hat, rel=0.2, abs=0.004
        ), n


def _conditional_et(queue: RegionQueue, k: int) -> float:
    """ET conditioned on a driver being able to arrive (state > -K).

    The paper's Eq. 13 averages ``T(n)`` over the *unconditional*
    stationary distribution, including state ``-K`` where a (K+1)-th
    driver physically cannot appear.  A FIFO simulation only realizes
    waits for drivers that do arrive, i.e. in states ``n > -K``; this is
    the matching expectation.  The two coincide whenever ``p(-K)`` is
    negligible — exactly the regime (``lam >= mu``) the paper says the
    platform maintains.
    """
    blocked = queue.state_probability(-k)
    unconditional = queue.expected_idle_time()
    overcount = queue.conditional_idle_time(-k) * blocked
    return (unconditional - overcount) / (1.0 - blocked)


@pytest.mark.parametrize("lam,mu,beta,k", CASES)
def test_expected_idle_time_matches_realized_waits(lam, mu, beta, k):
    queue = RegionQueue(lam=lam, mu=mu, beta=beta, max_drivers=k)
    _, waits = ChainSimulator(lam, mu, beta, k, seed=23).run()
    assert len(waits) > 1_000
    empirical = float(np.mean(waits))
    assert _conditional_et(queue, k) == pytest.approx(empirical, rel=0.1)


def test_paper_formula_coincides_with_physical_wait_when_uncongested():
    """For lam > mu the truncation state carries ~no mass, so Eq. 10's
    unconditional expectation equals the realized FIFO waits directly."""
    lam, mu, beta, k = 2.0, 1.0, 0.05, 10
    queue = RegionQueue(lam=lam, mu=mu, beta=beta, max_drivers=k)
    _, waits = ChainSimulator(lam, mu, beta, k, seed=23).run()
    assert queue.expected_idle_time() == pytest.approx(
        float(np.mean(waits)), rel=0.15
    )


def test_paper_formula_upper_bounds_physical_wait_under_congestion():
    """For lam < mu the paper's ET includes the impossible arrival at -K
    (the longest wait), so it sits above the realized mean — a documented
    conservatism of the model in the regime the platform avoids."""
    lam, mu, beta, k = 1.0, 1.8, 0.05, 6
    queue = RegionQueue(lam=lam, mu=mu, beta=beta, max_drivers=k)
    _, waits = ChainSimulator(lam, mu, beta, k, seed=23).run()
    empirical = float(np.mean(waits))
    assert queue.expected_idle_time() > empirical
    assert _conditional_et(queue, k) == pytest.approx(empirical, rel=0.1)


def test_truncation_is_respected_in_simulation():
    """The chain never holds more than K waiting drivers."""
    k = 4
    sim = ChainSimulator(lam=0.5, mu=2.5, beta=0.05, max_drivers=k, seed=5)
    state_time, _ = sim.run(num_events=50_000, burn_in=5_000)
    assert min(state_time) >= -k


def test_reneging_thins_the_rider_backlog():
    """Higher beta cuts the positive tail mass (sanity of the renege path)."""
    mild = _normalised(
        ChainSimulator(2.0, 1.0, 0.01, 8, seed=7).run(100_000, 10_000)[0]
    )
    harsh = _normalised(
        ChainSimulator(2.0, 1.0, 0.5, 8, seed=7).run(100_000, 10_000)[0]
    )
    tail = lambda dist: sum(p for n, p in dist.items() if n >= 5)
    assert tail(harsh) < tail(mild)
