"""Tests of the double-sided queueing model (paper §4, Eqs. 4–16)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.queueing import (
    RegionQueue,
    RenegingFunction,
    beta_for_patience,
    fit_beta,
)


class TestRenegingFunction:
    def test_zero_below_axis(self):
        pi = RenegingFunction(beta=0.1, mu=0.5)
        assert pi(0) == 0.0
        assert pi(-3) == 0.0

    def test_matches_equation_4(self):
        pi = RenegingFunction(beta=0.1, mu=0.5)
        assert pi(3) == pytest.approx(math.exp(0.3) / 0.5)

    def test_monotone_in_backlog(self):
        pi = RenegingFunction(beta=0.2, mu=1.0)
        values = [pi(n) for n in range(1, 10)]
        assert values == sorted(values)

    def test_mu_zero_is_floored_not_infinite(self):
        pi = RenegingFunction(beta=0.1, mu=0.0)
        assert math.isfinite(pi(1)) is True

    def test_negative_beta_rejected(self):
        with pytest.raises(ValueError):
            RenegingFunction(beta=-0.1, mu=1.0)


class TestStateProbabilities:
    def test_probabilities_sum_to_one_lam_greater(self):
        q = RegionQueue(lam=0.2, mu=0.1, beta=0.05, max_drivers=10)
        total = sum(q.state_probability(n) for n in range(-200, 200))
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_probabilities_sum_to_one_lam_smaller(self):
        q = RegionQueue(lam=0.1, mu=0.2, beta=0.05, max_drivers=15)
        total = sum(q.state_probability(n) for n in range(-15, 200))
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_probabilities_sum_to_one_balanced(self):
        q = RegionQueue(lam=0.15, mu=0.15, beta=0.05, max_drivers=8)
        total = sum(q.state_probability(n) for n in range(-8, 200))
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_truncation_below_minus_k(self):
        q = RegionQueue(lam=0.1, mu=0.2, beta=0.05, max_drivers=5)
        assert q.state_probability(-6) == 0.0
        assert q.state_probability(-5) > 0.0

    def test_flow_balance_equation_5(self):
        """mu_n * p_n == lam * p_{n-1} for every adjacent state pair."""
        q = RegionQueue(lam=0.3, mu=0.2, beta=0.1, max_drivers=6)
        for n in range(-5, 12):
            lhs = q.death_rate(n) * q.state_probability(n)
            rhs = q.birth_rate(n - 1) * q.state_probability(n - 1)
            assert lhs == pytest.approx(rhs, rel=1e-9)

    def test_negative_side_geometric_ratio(self):
        q = RegionQueue(lam=0.4, mu=0.1, beta=0.05, max_drivers=3)
        ratio = q.state_probability(-2) / q.state_probability(-1)
        assert ratio == pytest.approx(0.1 / 0.4)


class TestExpectedIdleTime:
    def test_conditional_idle_time(self):
        q = RegionQueue(lam=0.5, mu=0.1, beta=0.05)
        assert q.conditional_idle_time(3) == 0.0
        assert q.conditional_idle_time(0) == pytest.approx(1 / 0.5)
        assert q.conditional_idle_time(-2) == pytest.approx(3 / 0.5)

    def test_equation_10_closed_form(self):
        """For lam > mu, ET = lam * p0 / (lam - mu)^2."""
        q = RegionQueue(lam=0.3, mu=0.1, beta=0.05, max_drivers=5)
        expected = 0.3 * q.p0() / (0.3 - 0.1) ** 2
        assert q.expected_idle_time() == pytest.approx(expected)

    def test_equation_13_matches_direct_sum(self):
        """For lam < mu, ET equals the direct expectation over states."""
        q = RegionQueue(lam=0.1, mu=0.25, beta=0.05, max_drivers=12)
        direct = sum(
            q.conditional_idle_time(n) * q.state_probability(n)
            for n in range(-12, 1)
        )
        assert q.expected_idle_time() == pytest.approx(direct, rel=1e-9)

    def test_equation_13_matches_printed_closed_form(self):
        q = RegionQueue(lam=0.07, mu=0.11, beta=0.03, max_drivers=9)
        assert q.expected_idle_time() == pytest.approx(
            q.expected_idle_time_closed_form(), rel=1e-9
        )

    def test_equation_16_balanced(self):
        """For lam == mu, ET = p0 (K+1)(K+2) / (2 lam)."""
        q = RegionQueue(lam=0.2, mu=0.2, beta=0.05, max_drivers=7)
        expected = q.p0() * 8 * 9 / (2 * 0.2)
        assert q.expected_idle_time() == pytest.approx(expected)

    def test_equation_10_matches_direct_sum(self):
        q = RegionQueue(lam=0.3, mu=0.12, beta=0.08, max_drivers=4)
        direct = sum(
            q.conditional_idle_time(n) * q.state_probability(n)
            for n in range(-400, 1)
        )
        assert q.expected_idle_time() == pytest.approx(direct, rel=1e-6)

    def test_more_drivers_means_longer_idle(self):
        """Raising mu (more rejoining drivers) cannot shorten the wait."""
        base = RegionQueue(lam=0.2, mu=0.05, beta=0.05, max_drivers=10)
        more = RegionQueue(lam=0.2, mu=0.15, beta=0.05, max_drivers=10)
        assert more.expected_idle_time() > base.expected_idle_time()

    def test_more_riders_means_shorter_idle(self):
        base = RegionQueue(lam=0.15, mu=0.1, beta=0.05, max_drivers=10)
        more = RegionQueue(lam=0.35, mu=0.1, beta=0.05, max_drivers=10)
        assert more.expected_idle_time() < base.expected_idle_time()

    def test_huge_theta_stays_finite(self):
        """theta^K far beyond float range must not overflow (log path)."""
        q = RegionQueue(lam=1e-4, mu=0.5, beta=0.01, max_drivers=2000)
        et = q.expected_idle_time()
        assert math.isfinite(et)
        assert et > 0

    def test_zero_lambda_helper_returns_inf(self):
        et = RegionQueue.expected_idle_time_or_inf(0.0, 0.1, beta=0.05, max_drivers=5)
        assert et == math.inf

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            RegionQueue(lam=0.0, mu=0.1)
        with pytest.raises(ValueError):
            RegionQueue(lam=0.1, mu=-0.1)
        with pytest.raises(ValueError):
            RegionQueue(lam=0.1, mu=0.1, max_drivers=-1)

    def test_divergent_series_beta_zero_heavy_load(self):
        """beta = 0 with lam >> mu + pi: infinite backlog, ET collapses to 0.

        With beta = 0 the reneging rate is the constant 1/mu (Eq. 4), so the
        positive-side ratio is lam / (mu + 1/mu); mu = 10 makes it ~5 > 1.
        """
        q = RegionQueue(lam=50.0, mu=10.0, beta=0.0, max_drivers=3)
        assert q.p0() == 0.0
        assert q.expected_idle_time() == 0.0


@settings(max_examples=60, deadline=None)
@given(
    lam=st.floats(min_value=1e-3, max_value=5.0),
    mu=st.floats(min_value=0.0, max_value=5.0),
    beta=st.floats(min_value=1e-3, max_value=0.5),
    k=st.integers(min_value=0, max_value=50),
)
def test_property_p0_is_probability(lam, mu, beta, k):
    """p0 always lies in [0, 1]."""
    q = RegionQueue(lam=lam, mu=mu, beta=beta, max_drivers=k)
    assert 0.0 <= q.p0() <= 1.0


@settings(max_examples=60, deadline=None)
@given(
    lam=st.floats(min_value=1e-3, max_value=5.0),
    mu=st.floats(min_value=0.0, max_value=5.0),
    beta=st.floats(min_value=1e-3, max_value=0.5),
    k=st.integers(min_value=0, max_value=50),
)
def test_property_expected_idle_time_non_negative(lam, mu, beta, k):
    """ET is finite and non-negative across the parameter space."""
    q = RegionQueue(lam=lam, mu=mu, beta=beta, max_drivers=k)
    et = q.expected_idle_time()
    assert et >= 0.0
    assert math.isfinite(et)


@settings(max_examples=40, deadline=None)
@given(
    lam=st.floats(min_value=0.01, max_value=2.0),
    mu=st.floats(min_value=0.01, max_value=2.0),
    beta=st.floats(min_value=0.01, max_value=0.3),
    k=st.integers(min_value=1, max_value=30),
)
def test_property_et_equals_stationary_expectation(lam, mu, beta, k):
    """ET always equals sum_n T(n) p_n, whatever the rate regime.

    For ``lam > mu`` the negative side extends to ``-inf``; the sum is
    evaluated to depth 2000 and closed with the analytic geometric tail —
    near-balanced rates (``lam/mu -> 1``) put significant ET mass
    arbitrarily deep, so a bare truncation would miss it.
    """
    q = RegionQueue(lam=lam, mu=mu, beta=beta, max_drivers=k)
    if q.p0() == 0.0:
        return  # divergent backlog: expectation degenerates to 0 by design
    if lam > mu and (1.0 - mu / lam) < 1e-9:
        # The geometric-tail closure below divides by (1-r)^2; as r -> 1 the
        # reference value loses every significant digit, so the comparison
        # is meaningless (the balanced case is covered by the other branch).
        return
    lo = -k if lam <= mu else -2000
    direct = sum(q.conditional_idle_time(n) * q.state_probability(n) for n in range(lo, 1))
    if lam > mu:
        # Tail beyond the cut: sum_{m > M} (m+1) r^m * p0 / lam with
        # r = mu/lam; closed form r^(M+1) ((M+2)(1-r) + r) / (1-r)^2.
        r = mu / lam
        m_cut = -lo
        tail_weight = r ** (m_cut + 1) * ((m_cut + 2) * (1 - r) + r) / (1 - r) ** 2
        direct += q.p0() * tail_weight / lam
    assert q.expected_idle_time() == pytest.approx(direct, rel=1e-4, abs=1e-9)


class TestTruncatedEvaluation:
    """The -K-truncated chain used by the dispatch layer (all regimes)."""

    def test_matches_paper_exactly_for_lam_below_mu(self):
        q = RegionQueue(lam=0.1, mu=0.25, beta=0.05, max_drivers=12)
        assert q.expected_idle_time_truncated() == pytest.approx(
            q.expected_idle_time(), rel=1e-12
        )
        assert q.p0_truncated() == pytest.approx(q.p0(), rel=1e-12)

    def test_matches_paper_exactly_for_balanced(self):
        q = RegionQueue(lam=0.2, mu=0.2, beta=0.05, max_drivers=7)
        assert q.expected_idle_time_truncated() == pytest.approx(
            q.expected_idle_time(), rel=1e-12
        )

    def test_converges_to_equation_10_when_lam_dominates(self):
        """For lam >> mu the truncated tail is negligible: Eq. 10 and the
        truncated evaluation agree to float precision at moderate K."""
        q = RegionQueue(lam=2.0, mu=0.4, beta=0.05, max_drivers=60)
        assert q.expected_idle_time_truncated() == pytest.approx(
            q.expected_idle_time(), rel=1e-10
        )

    def test_bounded_at_near_critical_rates(self):
        """Eq. 10 explodes as lam -> mu+ (1/(lam-mu)); the truncated chain
        stays bounded by the physical (K+1)/lam worst case.  This is the
        float-noise regime that produced 1e18-second 'predictions' before
        the dispatch layer switched to the truncated evaluation."""
        lam = 0.25
        k = 30
        for eps in (1e-15, 1e-12, 1e-9, 1e-6, 1e-3):
            q = RegionQueue(lam=lam, mu=lam - eps, beta=0.01, max_drivers=k)
            et = q.expected_idle_time_truncated()
            assert et <= (k + 1) / lam + 1e-9
            # Eq. 10's untruncated value blows up for the tiny gaps.
            if eps <= 1e-9:
                assert q.expected_idle_time() > 100 * et

    def test_continuous_across_the_balanced_point(self):
        """ET varies smoothly as lam crosses mu (no branch discontinuity)."""
        mu, k = 0.2, 15
        values = [
            RegionQueue(lam=mu * f, mu=mu, beta=0.05, max_drivers=k)
            .expected_idle_time_truncated()
            for f in (0.98, 0.99, 1.0, 1.01, 1.02)
        ]
        for a, b in zip(values, values[1:]):
            assert b < a  # more riders, shorter waits
            assert abs(a - b) < 0.2 * a  # ... but only slightly at 1% steps

    def test_zero_mu_edge(self):
        q = RegionQueue(lam=0.5, mu=0.0, beta=0.05, max_drivers=10)
        assert q.expected_idle_time_truncated() == pytest.approx(
            q.p0_truncated() / 0.5
        )

    def test_et_non_monotone_in_mu_near_zero(self):
        """Documents an inherent property of Eq. 4: ``pi(n) = e^(beta*n)/mu``
        diverges as ``mu -> 0``, so at ``mu ~ 0`` every queued rider reneges
        instantly and ET collapses to ``~1/lam``; a *small* rise in ``mu``
        weakens reneging, lets riders queue, and *lowers* ET before the
        usual more-drivers-longer-wait effect takes over."""
        lam, beta, k = 1.333, 0.01, 6
        at_zero = RegionQueue(lam, 0.0, beta=beta, max_drivers=k)
        small = RegionQueue(lam, 0.1, beta=beta, max_drivers=k)
        large = RegionQueue(lam, 1.2, beta=beta, max_drivers=k)
        assert at_zero.expected_idle_time_truncated() == pytest.approx(
            1.0 / lam, rel=0.01
        )
        assert (
            small.expected_idle_time_truncated()
            < at_zero.expected_idle_time_truncated()
        )
        assert (
            large.expected_idle_time_truncated()
            > small.expected_idle_time_truncated()
        )


@settings(max_examples=80, deadline=None)
@given(
    lam=st.floats(min_value=1e-4, max_value=10.0),
    mu=st.floats(min_value=0.0, max_value=10.0),
    beta=st.floats(min_value=1e-3, max_value=0.5),
    k=st.integers(min_value=0, max_value=200),
)
def test_property_truncated_et_physically_bounded(lam, mu, beta, k):
    """The truncated ET never exceeds the fullest-state wait (K+1)/lam —
    the invariant that keeps dispatch priorities sane."""
    q = RegionQueue(lam=lam, mu=mu, beta=beta, max_drivers=k)
    et = q.expected_idle_time_truncated()
    assert 0.0 <= et <= (k + 1) / lam * (1 + 1e-9)


class TestBetaFitting:
    def test_fit_beta_recovers_exponent(self):
        mu = 0.4
        true_beta = 0.12
        pi = RenegingFunction(beta=true_beta, mu=mu)
        states = list(range(1, 15))
        rates = [pi(n) for n in states]
        assert fit_beta(states, rates, mu) == pytest.approx(true_beta, rel=1e-9)

    def test_fit_beta_ignores_useless_records(self):
        assert fit_beta([1, 2, 0, -1, 3], [3.0, 0.0, 0.9, 0.9, 9.0], 0.5) > 0

    def test_fit_beta_needs_data(self):
        with pytest.raises(ValueError):
            fit_beta([0, -1], [1.0, 1.0], 0.5)

    def test_beta_for_patience_positive_when_target_large(self):
        beta = beta_for_patience(patience=10.0, mu=5.0, typical_backlog=4)
        pi = RenegingFunction(beta=beta, mu=5.0)
        assert pi(4) == pytest.approx(4 / 10.0, rel=1e-9)

    def test_beta_for_patience_clamped_at_zero(self):
        assert beta_for_patience(patience=1e6, mu=0.01, typical_backlog=3) == 0.0

    def test_beta_for_patience_validation(self):
        with pytest.raises(ValueError):
            beta_for_patience(patience=0.0, mu=1.0)
        with pytest.raises(ValueError):
            beta_for_patience(patience=10.0, mu=1.0, typical_backlog=0)
