"""End-to-end integration tests of the queueing framework on crafted worlds.

These reconstruct the paper's Example 1 logic as executable scenarios: when
taxis are scarce and demand is regionally imbalanced, prioritising riders
whose destinations lack drivers positions the fleet for future demand.
Cell sizes are chosen so a pickup within the same region is always feasible
(the paper's "moving several hundred meters" assumption).
"""

import numpy as np
import pytest

from repro.dispatch import LongTripPolicy, NearestPolicy, QueueingPolicy
from repro.dispatch.base import BatchSnapshot
from repro.geo import BoundingBox, GeoPoint, GridPartition
from repro.roadnet.travel_time import StraightLineCost
from repro.sim.demand import OracleDemand
from repro.sim.engine import SimConfig, Simulation
from repro.sim.entities import Driver, Rider, RiderStatus

# Two 3.3 km cells; pickup reach at 300 s x 10 m/s = 3 km spans a cell.
BOX = BoundingBox(0.0, 0.0, 0.06, 0.03)
GRID = GridPartition(BOX, rows=1, cols=2)
COST = StraightLineCost(speed_mps=10.0, metric="euclidean")

CENTRE = GeoPoint(0.031, 0.015)          # just east of the boundary
WEST_DROP = GeoPoint(0.013, 0.015)       # region 0
EAST_DROP = GeoPoint(0.049, 0.015)       # region 1


def make_rider(rider_id, t, pickup, dropoff, wait=300.0):
    return Rider(
        rider_id=rider_id,
        request_time_s=t,
        pickup=pickup,
        dropoff=dropoff,
        deadline_s=t + wait,
        trip_seconds=COST.travel_seconds(pickup, dropoff),
        revenue=COST.travel_seconds(pickup, dropoff),
        origin_region=GRID.region_of(pickup),
        destination_region=GRID.region_of(dropoff),
    )


def example1_world(seed=0):
    """Scarce taxis; equal-cost order pairs ending west vs east; follow-up
    demand appears exclusively in the west region."""
    rng = np.random.default_rng(seed)
    riders = []
    rid = 0
    for k in range(8):  # phase 1: pairs at the centre, one to each side
        t = 60.0 * k
        riders.append(make_rider(rid, t, CENTRE, WEST_DROP)); rid += 1
        riders.append(make_rider(rid, t, CENTRE.shifted(0.0003), EAST_DROP)); rid += 1
    for k in range(50):  # phase 2: heavy west-only demand
        t = 500.0 + 40.0 * k
        pickup = GeoPoint(float(rng.uniform(0.004, 0.026)), float(rng.uniform(0.005, 0.025)))
        drop = GeoPoint(float(rng.uniform(0.004, 0.026)), float(rng.uniform(0.005, 0.025)))
        riders.append(make_rider(rid, t, pickup, drop)); rid += 1
    drivers = [
        Driver(j, CENTRE.shifted(0.001 * j, 0.0), GRID.region_of(CENTRE))
        for j in range(3)
    ]
    return riders, drivers


def run(policy, seed=0):
    riders, drivers = example1_world(seed)
    sim = Simulation(
        riders, drivers, GRID, COST, policy,
        SimConfig(batch_interval_s=10.0, tc_seconds=900.0, horizon_s=3600.0),
        demand=OracleDemand(riders, GRID.num_regions),
    )
    return sim.run()


def single_batch_snapshot():
    """One driver, two equal-cost riders; the west destination is hot."""
    riders = [
        make_rider(0, 0.0, CENTRE, WEST_DROP, wait=600.0),
        make_rider(1, 0.0, CENTRE.shifted(0.0003), EAST_DROP, wait=600.0),
    ]
    # Equalise the trip costs exactly.
    riders[0].trip_seconds = riders[1].trip_seconds = 200.0
    riders[0].revenue = riders[1].revenue = 200.0
    drivers = [Driver(0, CENTRE.shifted(0.0, 0.001), GRID.region_of(CENTRE))]
    return BatchSnapshot.with_arrays(
        predicted_riders=np.array([30.0, 1.0]),   # west will boom
        predicted_drivers=np.array([0.0, 0.0]),
        time_s=0.0,
        tc_seconds=900.0,
        waiting_riders=riders,
        available_drivers=drivers,
        grid=GRID,
        cost_model=COST,
        pickup_speed_mps=10.0,
    )


class TestExample1Mechanism:
    def test_single_batch_prefers_hot_destination(self):
        """The decisive mechanism: equal cost, hot west => west-bound rider."""
        plan = QueueingPolicy("irg").plan_batch(single_batch_snapshot())
        assert len(plan) == 1
        assert plan[0].rider_id == 0

    def test_single_batch_reverses_with_demand(self):
        """Flip the heat map and the choice flips with it."""
        snapshot = single_batch_snapshot()
        flipped = BatchSnapshot.with_arrays(
            predicted_riders=np.array([1.0, 30.0]),
            predicted_drivers=np.array([0.0, 0.0]),
            time_s=snapshot.time_s,
            tc_seconds=snapshot.tc_seconds,
            waiting_riders=snapshot.waiting_riders,
            available_drivers=snapshot.available_drivers,
            grid=snapshot.grid,
            cost_model=snapshot.cost_model,
            pickup_speed_mps=snapshot.pickup_speed_mps,
        )
        plan = QueueingPolicy("irg").plan_batch(flipped)
        assert plan[0].rider_id == 1


class TestExample1FullCycle:
    def test_all_policies_complete_with_conservation(self):
        for policy in (QueueingPolicy("irg"), QueueingPolicy("ls"),
                       NearestPolicy(), LongTripPolicy()):
            result = run(policy)
            served = sum(1 for r in result.riders if r.status is RiderStatus.SERVED)
            assert served == result.served_orders
            assert served + result.metrics.reneged_orders == len(result.riders)
            assert result.served_orders > 10  # the world is serviceable

    def test_irg_west_positioning_at_least_nearest(self):
        """IRG's phase-1 choices send at least as many drivers west as
        NEAR's (the destination-aware positioning tendency)."""

        def west_bound_phase1(result):
            return sum(
                1 for r in result.riders
                if r.request_time_s < 480
                and r.status is RiderStatus.SERVED
                and r.destination_region == 0
            )

        irg = run(QueueingPolicy("irg"))
        near = run(NearestPolicy())
        assert west_bound_phase1(irg) >= west_bound_phase1(near)

    def test_irg_competitive_on_revenue(self):
        irg = run(QueueingPolicy("irg"))
        near = run(NearestPolicy())
        assert irg.total_revenue >= near.total_revenue * 0.95

    def test_ls_at_least_matches_irg(self):
        irg = run(QueueingPolicy("irg"))
        ls = run(QueueingPolicy("ls"))
        assert ls.total_revenue >= irg.total_revenue * 0.98

    def test_short_serves_at_least_as_many_orders_as_ltg(self):
        short = run(QueueingPolicy("short"))
        ltg = run(LongTripPolicy())
        assert short.served_orders >= ltg.served_orders - 1


class TestIdleTimeFeedbackLoop:
    def test_predictions_track_realizations_in_steady_state(self):
        """In a single-region steady demand stream, the queueing model's ET
        predictions land in the right order of magnitude of the realized
        idle intervals (the Table 3 property, miniaturised)."""
        rng = np.random.default_rng(1)
        box = BoundingBox(0.0, 0.0, 0.02, 0.02)
        grid = GridPartition(box, rows=1, cols=1)
        riders = []
        for i in range(150):
            t = float(rng.uniform(0, 5400))
            pickup = box.sample(rng)
            drop = box.sample(rng)
            trip = COST.travel_seconds(pickup, drop)
            riders.append(
                Rider(
                    rider_id=i, request_time_s=t, pickup=pickup, dropoff=drop,
                    deadline_s=t + 240.0, trip_seconds=trip, revenue=trip,
                    origin_region=0, destination_region=0,
                )
            )
        drivers = [Driver(j, box.sample(rng), 0) for j in range(3)]
        sim = Simulation(
            riders, drivers, grid, COST, QueueingPolicy("irg"),
            SimConfig(batch_interval_s=10.0, tc_seconds=600.0, horizon_s=7200.0),
        )
        result = sim.run()
        samples = result.recorder.samples
        assert len(samples) >= 10
        mean_pred = np.mean([s.predicted_idle_s for s in samples])
        mean_real = np.mean([s.realized_idle_s for s in samples])
        # Order-of-magnitude agreement (batch quantisation adds ~5s bias).
        assert mean_pred == pytest.approx(mean_real, rel=2.0, abs=30.0)
