"""Tests of the idle ratio (Eq. 17) and the SHORT priority key."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.idle_ratio import idle_ratio, short_total_time


class TestIdleRatio:
    def test_matches_equation_17(self):
        assert idle_ratio(300.0, 100.0) == pytest.approx(100.0 / 400.0)

    def test_longer_trips_lower_ratio(self):
        """Rule a of §2.4: higher travel cost → higher priority."""
        assert idle_ratio(600.0, 100.0) < idle_ratio(200.0, 100.0)

    def test_shorter_idle_lower_ratio(self):
        """Rule b of §2.4: shorter idle time → higher priority."""
        assert idle_ratio(300.0, 50.0) < idle_ratio(300.0, 200.0)

    def test_infinite_idle_is_worst(self):
        assert idle_ratio(1000.0, math.inf) == 1.0

    def test_zero_zero_is_best(self):
        assert idle_ratio(0.0, 0.0) == 0.0

    def test_bounds(self):
        assert 0.0 <= idle_ratio(10.0, 5.0) <= 1.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            idle_ratio(-1.0, 5.0)
        with pytest.raises(ValueError):
            idle_ratio(1.0, -5.0)


@settings(max_examples=100, deadline=None)
@given(
    cost=st.floats(min_value=0, max_value=1e6),
    idle=st.floats(min_value=0, max_value=1e6),
)
def test_property_idle_ratio_in_unit_interval(cost, idle):
    assert 0.0 <= idle_ratio(cost, idle) <= 1.0


@settings(max_examples=100, deadline=None)
@given(
    cost=st.floats(min_value=1e-3, max_value=1e5),
    idle=st.floats(min_value=1e-3, max_value=1e5),
    extra=st.floats(min_value=1e-3, max_value=1e5),
)
def test_property_monotonicity(cost, idle, extra):
    """IR decreases in cost and increases in idle time."""
    assert idle_ratio(cost + extra, idle) < idle_ratio(cost, idle)
    assert idle_ratio(cost, idle + extra) > idle_ratio(cost, idle)


class TestShortTotalTime:
    def test_is_plain_sum(self):
        assert short_total_time(120.0, 30.0) == 150.0

    def test_infinite_idle_propagates(self):
        assert short_total_time(10.0, math.inf) == math.inf

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            short_total_time(-1.0, 1.0)
        with pytest.raises(ValueError):
            short_total_time(1.0, -1.0)
