"""Unit tests of the shared CSR segment-reduction kernels.

These kernels carry the bit-identity of the speculative LS sweep, so the
edge cases are pinned explicitly: empty segments, single-element segments,
all-``inf`` values (a fully masked slice), and first-occurrence
tie-breaking exactly matching ``np.argmin`` per segment.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rates import RegionRates
from repro.core.segtools import (
    csr_from_labels,
    masked_fill,
    region_et_tables,
    segment_min,
    segment_min_argmin,
)


class TestCsrFromLabels:
    def test_groups_positions_stably(self):
        labels = np.array([2, 0, 2, 1, 0, 2])
        order, indptr, pos_within = csr_from_labels(labels, 3)
        assert indptr.tolist() == [0, 2, 3, 6]
        # Stable: original enumeration order survives within each segment.
        assert order.tolist() == [1, 4, 3, 0, 2, 5]
        # pos_within inverts the CSR: order[indptr[l] + pos_within[t]] == t.
        for t, label in enumerate(labels.tolist()):
            assert order[indptr[label] + pos_within[t]] == t

    def test_empty_segments_are_zero_width(self):
        order, indptr, _ = csr_from_labels(np.array([3, 3, 0]), 5)
        assert indptr.tolist() == [0, 1, 1, 1, 3, 3]
        assert order.tolist() == [2, 0, 1]

    def test_no_labels_at_all(self):
        order, indptr, pos_within = csr_from_labels(
            np.empty(0, dtype=np.int64), 4
        )
        assert order.size == 0 and pos_within.size == 0
        assert indptr.tolist() == [0, 0, 0, 0, 0]


class TestSegmentMin:
    def test_reduces_each_slice(self):
        values = np.array([3.0, 1.0, 2.0, 5.0, 4.0])
        indptr = np.array([0, 2, 2, 5])
        mins = segment_min(values, indptr)
        assert mins.tolist() == [1.0, np.inf, 2.0]

    def test_single_element_segments(self):
        values = np.array([7.0, -1.0, 0.0])
        indptr = np.array([0, 1, 2, 3])
        assert segment_min(values, indptr).tolist() == [7.0, -1.0, 0.0]

    def test_all_segments_empty(self):
        mins = segment_min(np.empty(0), np.array([0, 0, 0]), fill=9.0)
        assert mins.tolist() == [9.0, 9.0]

    def test_custom_fill(self):
        mins = segment_min(np.array([2.0]), np.array([0, 0, 1]), fill=-1.0)
        assert mins.tolist() == [-1.0, 2.0]

    def test_trailing_empty_segment_not_polluted_by_clamp(self):
        # The reduceat clamp evaluates empty segments at the last element;
        # their bogus result must be overwritten with the fill.
        values = np.array([5.0, -3.0])
        indptr = np.array([0, 2, 2])
        assert segment_min(values, indptr).tolist() == [-3.0, np.inf]


class TestSegmentMinArgmin:
    def test_matches_per_segment_argmin(self):
        values = np.array([3.0, 1.0, 1.0, 5.0, 4.0, 4.0])
        indptr = np.array([0, 3, 6])
        mins, argmins = segment_min_argmin(values, indptr)
        assert mins.tolist() == [1.0, 4.0]
        # First occurrence on ties, as absolute indices.
        assert argmins.tolist() == [1, 4]

    def test_empty_segment_returns_minus_one(self):
        values = np.array([2.0, 0.5])
        indptr = np.array([0, 0, 2, 2])
        mins, argmins = segment_min_argmin(values, indptr)
        assert mins.tolist() == [np.inf, 0.5, np.inf]
        assert argmins.tolist() == [-1, 1, -1]

    def test_all_inf_segment_first_element_wins(self):
        # A fully masked slice still proposes its first element — exactly
        # what np.argmin does on an all-inf array.
        values = np.array([np.inf, np.inf, 1.0])
        indptr = np.array([0, 2, 3])
        mins, argmins = segment_min_argmin(values, indptr)
        assert mins.tolist() == [np.inf, 1.0]
        assert argmins.tolist() == [0, 2]

    def test_no_values_at_all(self):
        mins, argmins = segment_min_argmin(np.empty(0), np.array([0, 0]))
        assert mins.tolist() == [np.inf]
        assert argmins.tolist() == [-1]

    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(
            # Heavy collisions (few distinct values, inf included) so the
            # tie-break equality path is the norm, not the exception.
            st.sampled_from((0.0, 1.0, 1.0, 2.0, float("inf"))),
            max_size=24,
        ),
        st.integers(1, 6),
    )
    def test_equals_np_argmin_on_random_segments(self, values, num_segments):
        values = np.asarray(values, dtype=float)
        bounds = sorted(
            (len(values) * (i + 1)) // (num_segments + 1)
            for i in range(num_segments)
        )
        indptr = np.array([0, *bounds, len(values)], dtype=np.int64)
        mins, argmins = segment_min_argmin(values, indptr)
        for s in range(len(indptr) - 1):
            seg = values[indptr[s] : indptr[s + 1]]
            if seg.size == 0:
                assert mins[s] == np.inf and argmins[s] == -1
            else:
                assert mins[s] == seg.min()
                assert argmins[s] == indptr[s] + int(np.argmin(seg))


class TestMaskedFill:
    def test_masks_without_mutating(self):
        values = np.array([1.0, 2.0, 3.0])
        out = masked_fill(values, np.array([False, True, False]))
        assert out.tolist() == [1.0, np.inf, 3.0]
        assert values.tolist() == [1.0, 2.0, 3.0]

    def test_custom_fill_and_empty(self):
        assert masked_fill(
            np.array([4.0]), np.array([True]), fill=0.0
        ).tolist() == [0.0]
        assert masked_fill(
            np.empty(0), np.empty(0, dtype=bool)
        ).size == 0


class TestRegionEtTables:
    @staticmethod
    def _rates():
        return RegionRates(
            waiting_riders=[2, 0, 1],
            available_drivers=[0, 1, 0],
            predicted_riders=[4.0, 0.5, 8.0],
            predicted_drivers=[1.0, 2.0, 0.0],
            tc_seconds=1200.0,
            beta=0.05,
        )

    def test_covers_exactly_the_regions_in_play(self):
        rates = self._rates()
        dest = np.array([2, 0, 2, 0])
        et = region_et_tables(dest, rates)
        assert et.shape == (3,)
        assert et[0] == rates.expected_idle_time(0)
        assert et[2] == rates.expected_idle_time(2)

    def test_versions_track_rates(self):
        rates = self._rates()
        rates.on_assignment(1)
        et, versions = region_et_tables(
            np.array([1, 1]), rates, with_versions=True
        )
        assert et[1] == rates.expected_idle_time(1)
        assert versions[1] == rates.version(1)

    def test_matches_all_policy_prologues(self):
        # The three array policies share this prologue; pin the contract
        # they rely on: one evaluation per distinct destination.
        rates = self._rates()
        calls = []
        original = rates.expected_idle_time

        def counting(region):
            calls.append(region)
            return original(region)

        rates.expected_idle_time = counting
        region_et_tables(np.array([0, 2, 0, 2, 2]), rates)
        assert sorted(calls) == [0, 2]
