"""Tests of the Local Search algorithm (Algorithm 3, Lemma 5.1)."""

import pytest

from repro.core.batch_types import BatchDriver, BatchRider, CandidatePair, SelectedPair
from repro.core.idle_ratio import idle_ratio
from repro.core.local_search import local_search
from repro.core.rates import RegionRates


def fresh_rates(pred_r, pred_d, tc=1200.0):
    n = len(pred_r)
    return RegionRates(
        waiting_riders=[0] * n,
        available_drivers=[0] * n,
        predicted_riders=pred_r,
        predicted_drivers=pred_d,
        tc_seconds=tc,
        beta=0.05,
    )


class TestLocalSearch:
    def test_keeps_valid_matching(self):
        riders = [BatchRider(i, 0, i % 2, 300.0 + 50 * i, 300.0 + 50 * i) for i in range(6)]
        drivers = [BatchDriver(j, 0) for j in range(3)]
        pairs = [CandidatePair(i, j, 5.0) for i in range(6) for j in range(3)]
        rates = fresh_rates([10.0, 10.0], [1.0, 1.0])
        out = local_search(riders, drivers, pairs, rates)
        assert len({p.rider for p in out}) == len(out)
        assert len({p.driver for p in out}) == len(out)
        valid = {(p.rider, p.driver) for p in pairs}
        assert all((p.rider, p.driver) in valid for p in out)

    def test_improves_on_bad_initial_assignment(self):
        """Starting from a deliberately bad matching, LS must swap to the
        strictly better rider available to the driver."""
        # Rider 0: short trip to a cold region; rider 1: long trip to a hot one.
        riders = [
            BatchRider(0, 0, 1, 120.0, 120.0),
            BatchRider(1, 0, 0, 900.0, 900.0),
        ]
        drivers = [BatchDriver(0, 0)]
        pairs = [CandidatePair(0, 0, 5.0), CandidatePair(1, 0, 5.0)]
        rates = fresh_rates([20.0, 0.5], [0.5, 2.0])
        initial = [SelectedPair(rider=0, driver=0, pickup_eta_s=5.0, predicted_idle_s=0.0)]
        rates.on_assignment(riders[0].destination_region)
        out = local_search(riders, drivers, pairs, rates, initial=initial)
        assert len(out) == 1
        assert out[0].rider == 1

    def test_no_change_when_already_optimal(self):
        riders = [
            BatchRider(0, 0, 0, 900.0, 900.0),
            BatchRider(1, 0, 1, 120.0, 120.0),
        ]
        drivers = [BatchDriver(0, 0)]
        pairs = [CandidatePair(0, 0, 5.0), CandidatePair(1, 0, 5.0)]
        rates = fresh_rates([20.0, 0.5], [0.5, 2.0])
        initial = [SelectedPair(rider=0, driver=0, pickup_eta_s=5.0, predicted_idle_s=0.0)]
        rates.on_assignment(0)
        out = local_search(riders, drivers, pairs, rates, initial=initial)
        assert out[0].rider == 0

    def test_never_steals_assigned_riders(self):
        """A rider already assigned to another driver is not a swap target."""
        riders = [
            BatchRider(0, 0, 0, 600.0, 600.0),
            BatchRider(1, 0, 0, 650.0, 650.0),
        ]
        drivers = [BatchDriver(0, 0), BatchDriver(1, 0)]
        pairs = [CandidatePair(i, j, 5.0) for i in range(2) for j in range(2)]
        rates = fresh_rates([10.0], [1.0])
        out = local_search(riders, drivers, pairs, rates)
        assert len(out) == 2
        assert {p.rider for p in out} == {0, 1}

    def test_converges_within_sweep_cap(self):
        import numpy as np

        rng = np.random.default_rng(3)
        riders = [
            BatchRider(i, int(rng.integers(4)), int(rng.integers(4)),
                       float(rng.uniform(100, 1000)), float(rng.uniform(100, 1000)))
            for i in range(20)
        ]
        drivers = [BatchDriver(j, int(rng.integers(4))) for j in range(8)]
        pairs = [
            CandidatePair(i, j, 1.0)
            for i in range(20)
            for j in range(8)
            if rng.random() < 0.5
        ]
        rates = fresh_rates([12.0, 6.0, 3.0, 1.0], [1.0, 1.0, 2.0, 3.0])
        out = local_search(riders, drivers, pairs, rates, max_sweeps=64)
        assert len({p.rider for p in out}) == len(out)

    def test_ls_never_worse_than_irg_objective(self):
        """The sum of idle ratios under final rates cannot exceed IRG's."""
        import numpy as np

        rng = np.random.default_rng(11)
        riders = [
            BatchRider(i, int(rng.integers(3)), int(rng.integers(3)),
                       float(rng.uniform(100, 900)), float(rng.uniform(100, 900)))
            for i in range(15)
        ]
        drivers = [BatchDriver(j, int(rng.integers(3))) for j in range(6)]
        pairs = [
            CandidatePair(i, j, 2.0)
            for i in range(15)
            for j in range(6)
            if rng.random() < 0.7
        ]
        rider_by = {r.index: r for r in riders}

        def objective(selection, rates):
            return sum(
                idle_ratio(
                    rider_by[p.rider].trip_cost_s,
                    rates.expected_idle_time(rider_by[p.rider].destination_region),
                )
                for p in selection
            )

        from repro.core.irg import idle_ratio_greedy

        rates_irg = fresh_rates([9.0, 5.0, 2.0], [1.0, 1.5, 2.5])
        irg = idle_ratio_greedy(riders, drivers, pairs, rates_irg)

        rates_ls = fresh_rates([9.0, 5.0, 2.0], [1.0, 1.5, 2.5])
        ls = local_search(riders, drivers, pairs, rates_ls)

        assert objective(ls, rates_ls) <= objective(irg, rates_irg) + 1e-9

    def test_empty_input(self):
        rates = fresh_rates([1.0], [1.0])
        assert local_search([], [], [], rates) == []


class TestConvergenceReporting:
    """A cap-hit batch must be reported as non-converged (not silently
    returned as if Lemma 5.1's fixed point had been reached)."""

    def improving_batch(self):
        riders = [
            BatchRider(0, 0, 1, 120.0, 120.0),
            BatchRider(1, 0, 0, 900.0, 900.0),
        ]
        drivers = [BatchDriver(0, 0)]
        pairs = [CandidatePair(0, 0, 5.0), CandidatePair(1, 0, 5.0)]
        rates = fresh_rates([20.0, 0.5], [0.5, 2.0])
        initial = [SelectedPair(rider=0, driver=0, pickup_eta_s=5.0,
                                predicted_idle_s=0.0)]
        rates.on_assignment(riders[0].destination_region)
        return riders, drivers, pairs, rates, initial

    def test_cap_hit_reports_non_converged(self, caplog):
        """max_sweeps=1 stops right after an improving sweep: the search
        cannot prove a fixed point, so converged must be False."""
        riders, drivers, pairs, rates, initial = self.improving_batch()
        with caplog.at_level("WARNING", logger="repro.core.local_search"):
            out = local_search(
                riders, drivers, pairs, rates, initial=initial, max_sweeps=1
            )
        assert out.converged is False
        assert any("max_sweeps" in r.message for r in caplog.records)
        # The truncated assignment is still returned (the swap happened).
        assert out[0].rider == 1

    def test_full_convergence_reports_converged(self, caplog):
        """With room for the no-improvement sweep, the flag is True and no
        warning is logged."""
        riders, drivers, pairs, rates, initial = self.improving_batch()
        with caplog.at_level("WARNING", logger="repro.core.local_search"):
            out = local_search(
                riders, drivers, pairs, rates, initial=initial, max_sweeps=2
            )
        assert out.converged is True
        assert not caplog.records
        assert out[0].rider == 1

    @pytest.mark.parametrize("sweep", ["speculative", "sequential"])
    def test_array_path_reports_cap_hit_identically(self, sweep, caplog):
        import numpy as np

        from repro.core.local_search import local_search_arrays

        riders, drivers, pairs, rates, initial = self.improving_batch()
        with caplog.at_level("WARNING", logger="repro.core.local_search"):
            out = local_search_arrays(
                np.array([0, 1]), np.array([0, 0]),
                np.array([120.0, 900.0]), np.array([5.0, 5.0]),
                np.array([1, 0]), rates, initial=initial, max_sweeps=1,
                sweep=sweep,
            )
        assert out.converged is False
        assert any("max_sweeps" in r.message for r in caplog.records)
        assert out[0].rider == 1

    def test_array_path_rejects_unknown_sweep_mode(self):
        import numpy as np

        from repro.core.local_search import local_search_arrays

        riders, drivers, pairs, rates, initial = self.improving_batch()
        with pytest.raises(ValueError, match="sweep mode"):
            local_search_arrays(
                np.array([0, 1]), np.array([0, 0]),
                np.array([120.0, 900.0]), np.array([5.0, 5.0]),
                np.array([1, 0]), rates, sweep="parallel",
            )


class TestTieCycleTermination:
    """Tie-heavy batches where the mu feedback makes the sweep state revisit
    an earlier assignment must terminate via cycle detection with
    ``converged=True`` — before the fix they burned every sweep and reported
    a cap hit, even though no net improvement was possible."""

    def cycling_batch(self, seed):
        """A random dense batch known (per seed) to cycle under plain sweeps."""
        import numpy as np

        rng = np.random.default_rng(seed)
        trips = [120.0, 600.0]
        riders = [
            BatchRider(
                i,
                int(rng.integers(3)),
                int(rng.integers(3)),
                float(trips[int(rng.integers(2))]),
                float(trips[int(rng.integers(2))]),
            )
            for i in range(8)
        ]
        drivers = [BatchDriver(j, int(rng.integers(3))) for j in range(3)]
        pairs = [
            CandidatePair(i, j, float(rng.integers(1, 3)))
            for i in range(8)
            for j in range(3)
            if rng.random() < 0.8
        ]
        pred_r = [float(rng.integers(1, 20)) for _ in range(3)]
        pred_d = [float(rng.integers(0, 4)) for _ in range(3)]
        return riders, drivers, pairs, pred_r, pred_d

    @pytest.mark.parametrize("seed", [13, 22, 34, 35, 37])
    def test_cycle_detected_and_reported_converged(self, seed, caplog):
        riders, drivers, pairs, pred_r, pred_d = self.cycling_batch(seed)
        rates = fresh_rates(pred_r, pred_d)
        with caplog.at_level("WARNING", logger="repro.core.local_search"):
            out = local_search(riders, drivers, pairs, rates, max_sweeps=256)
        assert out.converged is True
        assert not caplog.records
        # Still a valid matching.
        assert len({p.rider for p in out}) == len(out)
        assert len({p.driver for p in out}) == len(out)
        valid = {(p.rider, p.driver) for p in pairs}
        assert all((p.rider, p.driver) in valid for p in out)

    @pytest.mark.parametrize("seed", [13, 22, 34, 35, 37])
    @pytest.mark.parametrize("sweep", ["speculative", "sequential"])
    def test_array_path_detects_same_cycle(self, seed, sweep):
        import numpy as np

        from repro.core.local_search import local_search_arrays

        riders, drivers, pairs, pred_r, pred_d = self.cycling_batch(seed)
        rider_by_index = {r.index: r for r in riders}
        out_scalar = local_search(
            riders, drivers, pairs, fresh_rates(pred_r, pred_d), max_sweeps=256
        )
        out_arrays = local_search_arrays(
            np.array([p.rider for p in pairs]),
            np.array([p.driver for p in pairs]),
            np.array([rider_by_index[p.rider].trip_cost_s for p in pairs]),
            np.array([p.pickup_eta_s for p in pairs]),
            np.array([rider_by_index[p.rider].destination_region for p in pairs]),
            fresh_rates(pred_r, pred_d),
            max_sweeps=256,
            sweep=sweep,
        )
        assert out_arrays.converged is True
        assert out_scalar.converged is True
        assert [(p.rider, p.driver) for p in out_scalar] == [
            (p.rider, p.driver) for p in out_arrays
        ]
        assert [p.predicted_idle_s for p in out_scalar] == pytest.approx(
            [p.predicted_idle_s for p in out_arrays]
        )
