"""Tests of the Idle Ratio Oriented Greedy algorithm (Algorithm 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch_types import BatchDriver, BatchRider, CandidatePair
from repro.core.idle_ratio import idle_ratio
from repro.core.irg import idle_ratio_greedy
from repro.core.rates import RegionRates


def make_rates(num_regions=4, riders=None, drivers=None, pred_r=None, pred_d=None):
    return RegionRates(
        waiting_riders=riders or [2] * num_regions,
        available_drivers=drivers or [1] * num_regions,
        predicted_riders=pred_r or [8.0] * num_regions,
        predicted_drivers=pred_d or [2.0] * num_regions,
        tc_seconds=1200.0,
        beta=0.05,
    )


class TestIRGBasics:
    def test_single_pair_selected(self):
        riders = [BatchRider(0, 0, 1, 600.0, 600.0)]
        drivers = [BatchDriver(0, 0)]
        pairs = [CandidatePair(0, 0, 30.0)]
        out = idle_ratio_greedy(riders, drivers, pairs, make_rates())
        assert len(out) == 1
        assert (out[0].rider, out[0].driver) == (0, 0)
        assert out[0].pickup_eta_s == 30.0

    def test_each_rider_and_driver_used_once(self):
        riders = [BatchRider(i, 0, 1, 300.0 + i, 300.0 + i) for i in range(4)]
        drivers = [BatchDriver(j, 0) for j in range(2)]
        pairs = [CandidatePair(i, j, 10.0) for i in range(4) for j in range(2)]
        out = idle_ratio_greedy(riders, drivers, pairs, make_rates())
        assert len(out) == 2
        assert len({p.rider for p in out}) == 2
        assert len({p.driver for p in out}) == 2

    def test_prefers_longer_trip_same_destination(self):
        """With equal destinations, the longer (higher-revenue) trip wins."""
        riders = [
            BatchRider(0, 0, 1, 200.0, 200.0),
            BatchRider(1, 0, 1, 900.0, 900.0),
        ]
        drivers = [BatchDriver(0, 0)]
        pairs = [CandidatePair(0, 0, 5.0), CandidatePair(1, 0, 5.0)]
        out = idle_ratio_greedy(riders, drivers, pairs, make_rates())
        assert len(out) == 1
        assert out[0].rider == 1

    def test_prefers_hot_destination_same_cost(self):
        """With equal costs, the destination with shorter ET wins."""
        rates = make_rates(
            num_regions=2,
            riders=[0, 0],
            drivers=[0, 0],
            pred_r=[30.0, 2.0],  # region 0 is hot → short idle there
            pred_d=[1.0, 1.0],
        )
        assert rates.expected_idle_time(0) < rates.expected_idle_time(1)
        riders = [
            BatchRider(0, 0, 0, 500.0, 500.0),  # ends in hot region
            BatchRider(1, 0, 1, 500.0, 500.0),  # ends in cold region
        ]
        drivers = [BatchDriver(0, 0)]
        pairs = [CandidatePair(0, 0, 5.0), CandidatePair(1, 0, 5.0)]
        out = idle_ratio_greedy(riders, drivers, pairs, rates)
        assert out[0].rider == 0

    def test_mu_feedback_applied_per_selection(self):
        rates = make_rates(num_regions=2)
        mu_before = rates.mu(1)
        riders = [BatchRider(i, 0, 1, 400.0, 400.0) for i in range(3)]
        drivers = [BatchDriver(j, 0) for j in range(3)]
        pairs = [CandidatePair(i, i, 5.0) for i in range(3)]
        idle_ratio_greedy(riders, drivers, pairs, rates)
        assert rates.mu(1) == pytest.approx(mu_before + 3.0 / 20.0)

    def test_predicted_idle_recorded_at_selection_time(self):
        rates = make_rates(num_regions=2)
        riders = [BatchRider(0, 0, 1, 400.0, 400.0)]
        drivers = [BatchDriver(0, 0)]
        out = idle_ratio_greedy(riders, drivers, [CandidatePair(0, 0, 1.0)], rates)
        # Recorded ET must be the pre-assignment value of the destination.
        fresh = make_rates(num_regions=2)
        assert out[0].predicted_idle_s == pytest.approx(fresh.expected_idle_time(1))

    def test_unknown_rider_rejected(self):
        with pytest.raises(ValueError):
            idle_ratio_greedy(
                [BatchRider(0, 0, 1, 1.0, 1.0)],
                [BatchDriver(0, 0)],
                [CandidatePair(5, 0, 1.0)],
                make_rates(),
            )

    def test_unknown_driver_rejected(self):
        with pytest.raises(ValueError):
            idle_ratio_greedy(
                [BatchRider(0, 0, 1, 1.0, 1.0)],
                [BatchDriver(0, 0)],
                [CandidatePair(0, 5, 1.0)],
                make_rates(),
            )

    def test_empty_inputs(self):
        assert idle_ratio_greedy([], [], [], make_rates()) == []


class TestLazyHeapCorrectness:
    def test_stale_entries_recomputed(self):
        """Saturating one destination must push later picks elsewhere.

        Region 1 starts marginally better than region 2; after enough
        assignments its mu rises and its idle ratio overtakes region 2's.
        The lazy heap must notice and start routing to region 2.
        """
        rates = RegionRates(
            waiting_riders=[0, 0, 0],
            available_drivers=[0, 0, 0],
            predicted_riders=[0.0, 10.0, 9.0],
            predicted_drivers=[0.0, 0.5, 0.5],
            tc_seconds=1200.0,
            beta=0.05,
        )
        riders = []
        pairs = []
        for i in range(6):
            dest = 1 if i < 3 else 2
            riders.append(BatchRider(i, 0, dest, 500.0, 500.0))
        drivers = [BatchDriver(j, 0) for j in range(4)]
        for i in range(6):
            for j in range(4):
                pairs.append(CandidatePair(i, j, 2.0))
        out = idle_ratio_greedy(riders, drivers, pairs, rates)
        destinations = sorted(riders[p.rider].destination_region for p in out)
        # All four drivers placed, split across both regions rather than all
        # flooding region 1.
        assert len(out) == 4
        assert 2 in destinations

    def test_greedy_order_matches_bruteforce_recompute(self):
        """Lazy-heap IRG must equal a naive re-scan-everything greedy."""
        rng_pairs = [
            (0, 0, 0, 1, 300.0),
            (1, 0, 0, 2, 700.0),
            (2, 1, 1, 1, 450.0),
            (3, 1, 1, 2, 650.0),
            (4, 2, 2, 1, 500.0),
        ]
        riders = [BatchRider(i, o, d, c, c) for i, o, _, d, c in [
            (p[0], p[1], p[2], p[3], p[4]) for p in rng_pairs
        ]]
        drivers = [BatchDriver(j, 0) for j in range(3)]
        pairs = [CandidatePair(r.index, j, 3.0) for r in riders for j in range(3)]

        def naive(riders, drivers, pairs, rates):
            rider_by = {r.index: r for r in riders}
            taken_r, taken_d, chosen = set(), set(), []
            live = list(pairs)
            while True:
                best, best_key = None, None
                for p in live:
                    if p.rider in taken_r or p.driver in taken_d:
                        continue
                    r = rider_by[p.rider]
                    key = idle_ratio(
                        r.trip_cost_s, rates.expected_idle_time(r.destination_region)
                    )
                    if best is None or key < best_key:
                        best, best_key = p, key
                if best is None:
                    return chosen
                taken_r.add(best.rider)
                taken_d.add(best.driver)
                rates.on_assignment(rider_by[best.rider].destination_region)
                chosen.append((best.rider, best.driver))

        lazy = idle_ratio_greedy(riders, drivers, pairs, make_rates(num_regions=3))
        brute = naive(riders, drivers, pairs, make_rates(num_regions=3))
        assert [(p.rider, p.driver) for p in lazy] == brute


@settings(max_examples=30, deadline=None)
@given(
    num_riders=st.integers(min_value=0, max_value=12),
    num_drivers=st.integers(min_value=0, max_value=8),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_matching_validity(num_riders, num_drivers, seed):
    """IRG output is always a matching over the given candidate pairs."""
    import numpy as np

    rng = np.random.default_rng(seed)
    riders = [
        BatchRider(i, int(rng.integers(4)), int(rng.integers(4)),
                   float(rng.uniform(60, 1200)), float(rng.uniform(60, 1200)))
        for i in range(num_riders)
    ]
    drivers = [BatchDriver(j, int(rng.integers(4))) for j in range(num_drivers)]
    pairs = [
        CandidatePair(i, j, float(rng.uniform(0, 120)))
        for i in range(num_riders)
        for j in range(num_drivers)
        if rng.random() < 0.6
    ]
    out = idle_ratio_greedy(riders, drivers, pairs, make_rates())
    seen_pairs = {(p.rider, p.driver) for p in pairs}
    assert len({p.rider for p in out}) == len(out)
    assert len({p.driver for p in out}) == len(out)
    assert all((p.rider, p.driver) in seen_pairs for p in out)
    # Maximality: no unselected valid pair has both endpoints free.
    used_r = {p.rider for p in out}
    used_d = {p.driver for p in out}
    assert not any(
        r not in used_r and d not in used_d for r, d in seen_pairs
    )
