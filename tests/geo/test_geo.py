"""Tests for points, distances, bounding boxes."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import (
    NYC_BBOX,
    BoundingBox,
    GeoPoint,
    equirectangular_m,
    haversine_m,
    manhattan_m,
)


class TestGeoPoint:
    def test_construction(self):
        p = GeoPoint(-73.98, 40.75)
        assert p.as_tuple() == (-73.98, 40.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            GeoPoint(200.0, 0.0)
        with pytest.raises(ValueError):
            GeoPoint(0.0, 95.0)

    def test_shifted(self):
        p = GeoPoint(1.0, 2.0).shifted(dlon=0.5, dlat=-0.5)
        assert p == GeoPoint(1.5, 1.5)

    def test_immutable(self):
        p = GeoPoint(0.0, 0.0)
        with pytest.raises(AttributeError):
            p.lon = 1.0


class TestDistances:
    def test_zero_distance(self):
        p = GeoPoint(-73.98, 40.75)
        assert haversine_m(p, p) == 0.0
        assert equirectangular_m(p, p) == 0.0
        assert manhattan_m(p, p) == 0.0

    def test_one_degree_latitude(self):
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(0.0, 1.0)
        assert haversine_m(a, b) == pytest.approx(111_195, rel=1e-3)

    def test_symmetry(self):
        a = GeoPoint(-73.98, 40.75)
        b = GeoPoint(-73.90, 40.70)
        assert haversine_m(a, b) == pytest.approx(haversine_m(b, a))
        assert manhattan_m(a, b) == pytest.approx(manhattan_m(b, a))

    def test_equirectangular_close_to_haversine_at_city_scale(self):
        a = GeoPoint(-73.98, 40.75)
        b = GeoPoint(-73.90, 40.70)
        assert equirectangular_m(a, b) == pytest.approx(haversine_m(a, b), rel=1e-4)

    def test_manhattan_at_least_euclidean(self):
        a = GeoPoint(-73.98, 40.75)
        b = GeoPoint(-73.90, 40.70)
        assert manhattan_m(a, b) >= equirectangular_m(a, b)

    def test_manhattan_at_most_sqrt2_euclidean(self):
        a = GeoPoint(-73.98, 40.75)
        b = GeoPoint(-73.90, 40.70)
        assert manhattan_m(a, b) <= math.sqrt(2) * equirectangular_m(a, b) + 1e-9


@settings(max_examples=80, deadline=None)
@given(
    lon1=st.floats(min_value=-74.1, max_value=-73.7),
    lat1=st.floats(min_value=40.5, max_value=41.0),
    lon2=st.floats(min_value=-74.1, max_value=-73.7),
    lat2=st.floats(min_value=40.5, max_value=41.0),
)
def test_property_triangle_inequality(lon1, lat1, lon2, lat2):
    a = GeoPoint(lon1, lat1)
    b = GeoPoint(lon2, lat2)
    mid = GeoPoint((lon1 + lon2) / 2, (lat1 + lat2) / 2)
    direct = haversine_m(a, b)
    via = haversine_m(a, mid) + haversine_m(mid, b)
    assert direct <= via + 1e-6


class TestBoundingBox:
    def test_contains(self):
        assert NYC_BBOX.contains(GeoPoint(-73.98, 40.75))
        assert not NYC_BBOX.contains(GeoPoint(-73.98, 41.5))

    def test_clamp(self):
        clamped = NYC_BBOX.clamp(GeoPoint(-80.0, 45.0))
        assert NYC_BBOX.contains(clamped)
        assert clamped.lon == NYC_BBOX.min_lon
        assert clamped.lat == NYC_BBOX.max_lat

    def test_center(self):
        box = BoundingBox(0.0, 0.0, 2.0, 4.0)
        assert box.center == GeoPoint(1.0, 2.0)

    def test_sample_inside(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            assert NYC_BBOX.contains(NYC_BBOX.sample(rng))

    def test_gaussian_sample_clamped(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            p = NYC_BBOX.sample_gaussian(rng, NYC_BBOX.center, sigma_deg=1.0)
            assert NYC_BBOX.contains(p)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(1.0, 0.0, 1.0, 2.0)
        with pytest.raises(ValueError):
            BoundingBox(0.0, 2.0, 1.0, 2.0)
