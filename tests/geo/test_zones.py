"""Tests of irregular polygon zones."""

import pytest

from repro.geo import GeoPoint, NYC_BBOX, Zone, ZonePartition


def square(zone_id, x0, y0, size=1.0, name="z"):
    return Zone(
        zone_id=zone_id,
        name=f"{name}{zone_id}",
        polygon=((x0, y0), (x0 + size, y0), (x0 + size, y0 + size), (x0, y0 + size)),
    )


class TestZone:
    def test_contains_inside(self):
        z = square(0, 0.0, 0.0)
        assert z.contains(GeoPoint(0.5, 0.5))

    def test_contains_outside(self):
        z = square(0, 0.0, 0.0)
        assert not z.contains(GeoPoint(1.5, 0.5))

    def test_contains_on_edge(self):
        z = square(0, 0.0, 0.0)
        assert z.contains(GeoPoint(0.0, 0.5))
        assert z.contains(GeoPoint(0.5, 1.0))

    def test_centroid_of_square(self):
        z = square(0, 0.0, 0.0, size=2.0)
        c = z.centroid()
        assert c.lon == pytest.approx(1.0)
        assert c.lat == pytest.approx(1.0)

    def test_centroid_of_triangle(self):
        z = Zone(0, "t", ((0.0, 0.0), (3.0, 0.0), (0.0, 3.0)))
        c = z.centroid()
        assert c.lon == pytest.approx(1.0)
        assert c.lat == pytest.approx(1.0)

    def test_bbox(self):
        z = square(0, 1.0, 2.0, size=3.0)
        box = z.bbox()
        assert (box.min_lon, box.min_lat, box.max_lon, box.max_lat) == (1.0, 2.0, 4.0, 5.0)

    def test_needs_three_vertices(self):
        with pytest.raises(ValueError):
            Zone(0, "bad", ((0.0, 0.0), (1.0, 1.0)))


class TestZonePartition:
    def _partition(self):
        return ZonePartition([square(0, 0.0, 0.0), square(1, 1.0, 0.0), square(2, 0.0, 1.0)])

    def test_region_of_inside(self):
        part = self._partition()
        assert part.region_of(GeoPoint(0.5, 0.5)) == 0
        assert part.region_of(GeoPoint(1.5, 0.5)) == 1

    def test_region_of_gap_falls_back_to_nearest(self):
        part = self._partition()
        assert part.region_of(GeoPoint(1.6, 1.6)) in (0, 1, 2)

    def test_adjacency_shared_vertices(self):
        part = self._partition()
        adj = part.adjacency()
        assert 1 in adj[0]
        assert 2 in adj[0]
        # Zones 1 and 2 share the corner vertex (1.0, 1.0), which the
        # shared-vertex rule counts as adjacency.
        assert 2 in adj[1]

    def test_zone_ids_must_be_dense(self):
        with pytest.raises(ValueError):
            ZonePartition([square(0, 0.0, 0.0), square(2, 1.0, 0.0)])

    def test_voronoi_like_partition(self):
        seeds = [GeoPoint(-73.99, 40.73), GeoPoint(-73.85, 40.75), GeoPoint(-73.95, 40.65)]
        part = ZonePartition.voronoi_like(NYC_BBOX, seeds, cells=12)
        assert part.num_regions >= 2
        for seed in seeds:
            assert 0 <= part.region_of(seed) < part.num_regions
        adj = part.adjacency()
        assert len(adj) == part.num_regions
