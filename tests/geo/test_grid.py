"""Tests of the uniform grid partition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import NYC_BBOX, GeoPoint, GridPartition


@pytest.fixture
def grid():
    return GridPartition(NYC_BBOX, rows=16, cols=16)


class TestGridPartition:
    def test_paper_dimensions(self, grid):
        assert grid.num_regions == 256
        assert len(grid) == 256

    def test_corner_regions(self, grid):
        assert grid.region_of(GeoPoint(NYC_BBOX.min_lon, NYC_BBOX.min_lat)) == 0
        top_right = grid.region_of(GeoPoint(NYC_BBOX.max_lon - 1e-9, NYC_BBOX.max_lat - 1e-9))
        assert top_right == 255

    def test_out_of_bbox_clamped(self, grid):
        assert grid.region_of(GeoPoint(-80.0, 35.0)) == 0
        assert grid.region_of(GeoPoint(-60.0, 45.0)) == 255

    def test_row_col_roundtrip(self, grid):
        for region in (0, 17, 100, 255):
            row, col = grid.row_col(region)
            assert grid.region_id(row, col) == region

    def test_center_maps_back(self, grid):
        for region in range(0, 256, 7):
            assert grid.region_of(grid.center_of(region)) == region

    def test_cell_bbox_contains_center(self, grid):
        for region in (0, 31, 128, 255):
            cell = grid.cell_bbox(region)
            assert cell.contains(grid.center_of(region))

    def test_neighbors_interior(self, grid):
        region = grid.region_id(8, 8)
        assert len(grid.neighbors(region, radius=1)) == 8

    def test_neighbors_corner(self, grid):
        assert len(grid.neighbors(0, radius=1)) == 3

    def test_ring_includes_self(self, grid):
        ring = grid.ring(0, radius=1)
        assert ring[0] == 0
        assert len(ring) == 4

    def test_adjacency_four_connected(self, grid):
        adj = grid.adjacency()
        assert len(adj) == 256
        assert len(adj[0]) == 2  # corner
        assert len(adj[grid.region_id(8, 8)]) == 4  # interior
        # Symmetry.
        for node, nbrs in adj.items():
            for other in nbrs:
                assert node in adj[other]

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            GridPartition(NYC_BBOX, rows=0, cols=4)

    def test_invalid_region_id(self, grid):
        with pytest.raises(ValueError):
            grid.row_col(256)
        with pytest.raises(ValueError):
            grid.center_of(-1)


@settings(max_examples=100, deadline=None)
@given(
    lon=st.floats(min_value=-74.03, max_value=-73.77),
    lat=st.floats(min_value=40.58, max_value=40.92),
    rows=st.integers(min_value=1, max_value=20),
    cols=st.integers(min_value=1, max_value=20),
)
def test_property_region_of_total_and_in_range(lon, lat, rows, cols):
    grid = GridPartition(NYC_BBOX, rows=rows, cols=cols)
    region = grid.region_of(GeoPoint(lon, lat))
    assert 0 <= region < grid.num_regions
    cell = grid.cell_bbox(region)
    # The point lies within (or on the border of) its cell.
    assert cell.min_lon - 1e-9 <= lon <= cell.max_lon + 1e-9
    assert cell.min_lat - 1e-9 <= lat <= cell.max_lat + 1e-9
