"""Tests of the uniform grid partition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import NYC_BBOX, GeoPoint, GridPartition


@pytest.fixture
def grid():
    return GridPartition(NYC_BBOX, rows=16, cols=16)


class TestGridPartition:
    def test_paper_dimensions(self, grid):
        assert grid.num_regions == 256
        assert len(grid) == 256

    def test_corner_regions(self, grid):
        assert grid.region_of(GeoPoint(NYC_BBOX.min_lon, NYC_BBOX.min_lat)) == 0
        top_right = grid.region_of(GeoPoint(NYC_BBOX.max_lon - 1e-9, NYC_BBOX.max_lat - 1e-9))
        assert top_right == 255

    def test_out_of_bbox_clamped(self, grid):
        assert grid.region_of(GeoPoint(-80.0, 35.0)) == 0
        assert grid.region_of(GeoPoint(-60.0, 45.0)) == 255

    def test_row_col_roundtrip(self, grid):
        for region in (0, 17, 100, 255):
            row, col = grid.row_col(region)
            assert grid.region_id(row, col) == region

    def test_center_maps_back(self, grid):
        for region in range(0, 256, 7):
            assert grid.region_of(grid.center_of(region)) == region

    def test_cell_bbox_contains_center(self, grid):
        for region in (0, 31, 128, 255):
            cell = grid.cell_bbox(region)
            assert cell.contains(grid.center_of(region))

    def test_neighbors_interior(self, grid):
        region = grid.region_id(8, 8)
        assert len(grid.neighbors(region, radius=1)) == 8

    def test_neighbors_corner(self, grid):
        assert len(grid.neighbors(0, radius=1)) == 3

    def test_ring_includes_self(self, grid):
        ring = grid.ring(0, radius=1)
        assert ring[0] == 0
        assert len(ring) == 4

    def test_adjacency_four_connected(self, grid):
        adj = grid.adjacency()
        assert len(adj) == 256
        assert len(adj[0]) == 2  # corner
        assert len(adj[grid.region_id(8, 8)]) == 4  # interior
        # Symmetry.
        for node, nbrs in adj.items():
            for other in nbrs:
                assert node in adj[other]

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            GridPartition(NYC_BBOX, rows=0, cols=4)

    def test_invalid_region_id(self, grid):
        with pytest.raises(ValueError):
            grid.row_col(256)
        with pytest.raises(ValueError):
            grid.center_of(-1)


@settings(max_examples=100, deadline=None)
@given(
    lon=st.floats(min_value=-74.03, max_value=-73.77),
    lat=st.floats(min_value=40.58, max_value=40.92),
    rows=st.integers(min_value=1, max_value=20),
    cols=st.integers(min_value=1, max_value=20),
)
def test_property_region_of_total_and_in_range(lon, lat, rows, cols):
    grid = GridPartition(NYC_BBOX, rows=rows, cols=cols)
    region = grid.region_of(GeoPoint(lon, lat))
    assert 0 <= region < grid.num_regions
    cell = grid.cell_bbox(region)
    # The point lies within (or on the border of) its cell.
    assert cell.min_lon - 1e-9 <= lon <= cell.max_lon + 1e-9
    assert cell.min_lat - 1e-9 <= lat <= cell.max_lat + 1e-9


@settings(max_examples=150, deadline=None)
@given(
    p_lon=st.floats(min_value=-74.05, max_value=-73.75),
    p_lat=st.floats(min_value=40.56, max_value=40.94),
    q_lon=st.floats(min_value=-74.05, max_value=-73.75),
    q_lat=st.floats(min_value=40.56, max_value=40.94),
    rows=st.integers(min_value=1, max_value=12),
    cols=st.integers(min_value=1, max_value=12),
)
def test_property_cell_gap_bound_is_conservative(
    p_lon, p_lat, q_lon, q_lat, rows, cols
):
    """The dispatch reach-prune bound — point-to-edge gaps plus whole-cell
    gaps — never exceeds the true manhattan distance to any other point
    (``q`` may fall slightly off-box: clamped regions must stay safe)."""
    from repro.geo.distance import manhattan_m

    grid = GridPartition(NYC_BBOX, rows=rows, cols=cols)
    p = GeoPoint(p_lon, p_lat)
    q = GeoPoint(q_lon, q_lat)
    p_region = grid.region_of(p)
    q_region = grid.region_of(q)
    gap_w, gap_h = grid.cell_gap_m()
    west, east, south, north = grid.edge_gaps_m(p_region, p.lon, p.lat)
    p_row, p_col = grid.row_col(p_region)
    q_row, q_col = grid.row_col(q_region)

    dr = q_row - p_row
    if dr > 0:
        lat_gap = north + (dr - 1) * gap_h
    elif dr < 0:
        lat_gap = south + (-dr - 1) * gap_h
    else:
        lat_gap = 0.0
    dc = q_col - p_col
    if dc > 0:
        lon_gap = east + (dc - 1) * gap_w
    elif dc < 0:
        lon_gap = west + (-dc - 1) * gap_w
    else:
        lon_gap = 0.0

    # Same comparison slack as the dispatch prune.
    assert lat_gap + lon_gap <= manhattan_m(p, q) * (1.0 + 1e-9) + 1e-9


def test_cell_gap_never_exceeds_cell_size():
    for rows, cols in [(1, 1), (4, 7), (16, 16)]:
        grid = GridPartition(NYC_BBOX, rows=rows, cols=cols)
        gap_w, gap_h = grid.cell_gap_m()
        size_w, size_h = grid.cell_size_m()
        assert 0.0 < gap_w <= size_w
        assert 0.0 < gap_h <= size_h * (1.0 + 1e-12)


def test_edge_gaps_clamp_off_box_points():
    grid = GridPartition(NYC_BBOX, rows=4, cols=4)
    # A point west and south of the box clamps into the corner cell; the
    # gaps toward the box interior stay exact, those "behind" floor at 0.
    region = grid.region_of(GeoPoint(-75.0, 40.0))
    west, east, south, north = grid.edge_gaps_m(region, -75.0, 40.0)
    assert west == 0.0 and south == 0.0
    assert east > 0.0 and north > 0.0
