"""Tests of the jittered-mesh zone builder and the raster zone index."""

import numpy as np
import pytest

from repro.geo import BoundingBox, GeoPoint, build_jittered_zones

BOX = BoundingBox(-74.03, 40.58, -73.77, 40.92)


def _partition(rows=5, cols=4, jitter=0.35, seed=3):
    return build_jittered_zones(
        BOX, rows=rows, cols=cols, jitter=jitter, rng=np.random.default_rng(seed)
    )


class TestBuilder:
    def test_zone_count_and_ids(self):
        zones = _partition(rows=5, cols=4)
        assert zones.num_regions == 20
        assert [z.zone_id for z in zones.zones] == list(range(20))

    def test_partition_tiles_the_box(self):
        """Every sampled point lands in exactly one zone polygon (no gaps,
        no centroid fallback needed away from borders)."""
        zones = _partition()
        rng = np.random.default_rng(9)
        for _ in range(300):
            p = BOX.sample(rng)
            hits = [z.zone_id for z in zones.zones if z.contains(p)]
            assert 1 <= len(hits) <= 2  # 2 only exactly on a shared border
            assert zones.region_of(p) in hits

    def test_corners_remain_fixed(self):
        zones = _partition(rows=3, cols=3)
        south_west = zones.zones[0].polygon[0]
        assert south_west == (BOX.min_lon, BOX.min_lat)
        north_east = zones.zones[-1].polygon[2]
        assert north_east == (BOX.max_lon, BOX.max_lat)

    def test_zones_are_genuinely_irregular(self):
        """Vertex jitter must actually vary zone areas."""
        zones = _partition(jitter=0.35)

        def area(zone):
            poly = zone.polygon
            acc = 0.0
            for i in range(len(poly)):
                x1, y1 = poly[i]
                x2, y2 = poly[(i + 1) % len(poly)]
                acc += x1 * y2 - x2 * y1
            return abs(acc) / 2

        areas = [area(z) for z in zones.zones]
        assert max(areas) > 1.3 * min(areas)

    def test_zero_jitter_recovers_regular_grid(self):
        zones = build_jittered_zones(BOX, rows=2, cols=2, jitter=0.0)
        mid_lon = (BOX.min_lon + BOX.max_lon) / 2
        mid_lat = (BOX.min_lat + BOX.max_lat) / 2
        assert zones.zones[0].polygon[2] == (mid_lon, mid_lat)

    def test_adjacency_matches_grid_structure(self):
        """Interior zones of an R x C mesh touch 8 vertex-neighbours."""
        zones = _partition(rows=4, cols=4)
        adjacency = zones.adjacency()
        interior = 1 * 4 + 1  # row 1, col 1
        assert len(adjacency[interior]) == 8
        corner = 0
        assert len(adjacency[corner]) == 3

    def test_deterministic_per_seed(self):
        a = _partition(seed=5)
        b = _partition(seed=5)
        assert [z.polygon for z in a.zones] == [z.polygon for z in b.zones]
        c = _partition(seed=6)
        assert [z.polygon for z in a.zones] != [z.polygon for z in c.zones]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            build_jittered_zones(BOX, rows=0, cols=3)
        with pytest.raises(ValueError):
            build_jittered_zones(BOX, rows=3, cols=3, jitter=0.5)


class TestRasterIndex:
    def test_index_agrees_with_scan_everywhere(self):
        zones = _partition(rows=6, cols=6)
        indexed = _partition(rows=6, cols=6).build_index(resolution=48)
        rng = np.random.default_rng(4)
        for _ in range(500):
            p = BOX.sample(rng)
            assert indexed.region_of(p) == zones.region_of(p)

    def test_build_index_returns_self_for_chaining(self):
        zones = _partition()
        assert zones.build_index() is zones

    def test_out_of_box_points_still_resolve(self):
        zones = _partition().build_index()
        outside = GeoPoint(BOX.max_lon + 1.0, BOX.max_lat + 1.0)
        assert 0 <= zones.region_of(outside) < zones.num_regions

    def test_rejects_tiny_resolution(self):
        with pytest.raises(ValueError):
            _partition().build_index(resolution=1)
