"""Per-policy audit of the engine's tick-skipping opt-in flags.

``supports_tick_skipping`` / ``assigns_whenever_possible`` let the engine
prove whole ticks away; a policy carrying a flag it does not honour would
silently skip assignable ticks.  This audit runs **every policy the
experiment runner can register** (all registry names plus a rebalancing
wrapper) three ways on the same fixed-seed world —

- the optimised engine with tick skipping enabled (flags honoured),
- the optimised engine with ``skip_empty_ticks=False`` (flags ignored),
- the frozen seed loop (``ReferenceSimulation``, no skipping at all)

— and asserts all three produce identical economics, per-rider outcomes,
and per-tick batch series.  A mis-flagged policy diverges between the
first run and the other two, so it can never land silently.
"""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import _make_policy, available_policies
from repro.geo import BoundingBox, GridPartition
from repro.roadnet.travel_time import StraightLineCost
from repro.sim.engine import SimConfig, Simulation
from repro.sim.engine_reference import ReferenceSimulation
from repro.sim.entities import Driver, Rider

BOX = BoundingBox(0.0, 0.0, 0.05, 0.04)
GRID = GridPartition(BOX, rows=3, cols=3)
COST = StraightLineCost(speed_mps=9.0, metric="manhattan")
SKIP = SimConfig(batch_interval_s=5.0, tc_seconds=900.0, horizon_s=5400.0,
                 pickup_speed_mps=9.0, skip_empty_ticks=True)
NO_SKIP = SimConfig(batch_interval_s=5.0, tc_seconds=900.0, horizon_s=5400.0,
                    pickup_speed_mps=9.0, skip_empty_ticks=False)

#: The full registry plus one rebalancing wrapper (stateful repositions are
#: the trickiest case for the no-op-tick proof).
AUDITED = tuple(available_policies()) + ("IRG-R+RB", "NEAR+RB")

#: The registry's beta/seed knobs are all `_make_policy` reads.
POLICY_CONFIG = ExperimentConfig()


def build_world(seed, num_riders=200, num_drivers=16):
    rng = np.random.default_rng(seed)
    riders = []
    for i in range(num_riders):
        t = float(rng.uniform(0.0, 4000.0))
        pickup = BOX.sample(rng)
        dropoff = BOX.sample(rng)
        trip = COST.travel_seconds(pickup, dropoff)
        riders.append(
            Rider(
                rider_id=i, request_time_s=t, pickup=pickup, dropoff=dropoff,
                deadline_s=t + float(rng.uniform(60.0, 360.0)),
                trip_seconds=trip, revenue=trip,
                origin_region=GRID.region_of(pickup),
                destination_region=GRID.region_of(dropoff),
            )
        )
    drivers = []
    for j in range(num_drivers):
        position = BOX.sample(rng)
        join, leave = 0.0, float("inf")
        if rng.random() < 0.5:
            join = float(rng.uniform(0.0, 1500.0))
            leave = join + float(rng.uniform(1200.0, 4000.0))
        drivers.append(
            Driver(
                j, position, GRID.region_of(position),
                join_time_s=join, leave_time_s=leave, available_since_s=join,
            )
        )
    return riders, drivers


def run(engine_cls, policy_name, config):
    riders, drivers = build_world(seed=17)
    policy = _make_policy(policy_name, POLICY_CONFIG)
    return engine_cls(riders, drivers, GRID, COST, policy, config).run()


def assert_identical(a, b):
    assert a.metrics.total_revenue == b.metrics.total_revenue
    assert a.metrics.served_orders == b.metrics.served_orders
    assert a.metrics.reneged_orders == b.metrics.reneged_orders
    assert a.metrics.repositions == b.metrics.repositions
    for ra, rb in zip(a.riders, b.riders):
        assert ra.status is rb.status
        assert ra.driver_id == rb.driver_id
        assert ra.assign_time_s == rb.assign_time_s
    assert len(a.metrics.batches) == len(b.metrics.batches)
    for ba, bb in zip(a.metrics.batches, b.metrics.batches):
        assert ba.time_s == bb.time_s
        assert ba.waiting_riders == bb.waiting_riders
        assert ba.available_drivers == bb.available_drivers
        assert ba.assignments == bb.assignments
    assert len(a.recorder.samples) == len(b.recorder.samples)
    for sa, sb in zip(a.recorder.samples, b.recorder.samples):
        assert sa == sb


@pytest.mark.parametrize("policy_name", AUDITED)
def test_tick_skipping_flags_are_honest(policy_name):
    skipping = run(Simulation, policy_name, SKIP)
    plain = run(Simulation, policy_name, NO_SKIP)
    reference = run(ReferenceSimulation, policy_name, NO_SKIP)
    assert_identical(skipping, plain)
    assert_identical(skipping, reference)
