"""Integration tests of the batch simulation engine."""

import numpy as np
import pytest

from repro.dispatch import NearestPolicy, QueueingPolicy, UpperBoundPolicy
from repro.dispatch.base import Assignment, BatchSnapshot, DispatchPolicy
from repro.geo import BoundingBox, GeoPoint, GridPartition
from repro.roadnet.travel_time import StraightLineCost
from repro.sim.demand import OracleDemand, ZeroDemand
from repro.sim.engine import SimConfig, Simulation
from repro.sim.entities import Driver, Rider, RiderStatus

BOX = BoundingBox(0.0, 0.0, 0.1, 0.1)
GRID = GridPartition(BOX, rows=2, cols=2)
COST = StraightLineCost(speed_mps=10.0, metric="euclidean")


def rider(rider_id, t, pickup, dropoff, wait=300.0):
    return Rider(
        rider_id=rider_id,
        request_time_s=t,
        pickup=pickup,
        dropoff=dropoff,
        deadline_s=t + wait,
        trip_seconds=COST.travel_seconds(pickup, dropoff),
        revenue=COST.travel_seconds(pickup, dropoff),
        origin_region=GRID.region_of(pickup),
        destination_region=GRID.region_of(dropoff),
    )


def driver(driver_id, position):
    return Driver(driver_id=driver_id, position=position, region=GRID.region_of(position))


def config(**kw):
    defaults = dict(batch_interval_s=10.0, tc_seconds=600.0, horizon_s=3600.0)
    defaults.update(kw)
    return SimConfig(**defaults)


class TestEngineBasics:
    def test_single_rider_served(self):
        p1, p2 = GeoPoint(0.01, 0.01), GeoPoint(0.08, 0.08)
        riders = [rider(0, 5.0, p1, p2)]
        start = GeoPoint(0.012, 0.01)
        drivers = [driver(0, start)]
        expected_eta = COST.travel_seconds(start, p1)
        result = Simulation(riders, drivers, GRID, COST, NearestPolicy(), config()).run()
        assert result.served_orders == 1
        assert result.total_revenue == pytest.approx(riders[0].revenue)
        served = result.riders[0]
        assert served.status is RiderStatus.SERVED
        assert served.assign_time_s == 10.0  # first batch tick after request
        assert served.pickup_time_s == pytest.approx(10.0 + expected_eta)

    def test_unreachable_rider_reneges(self):
        p1, p2 = GeoPoint(0.01, 0.01), GeoPoint(0.08, 0.08)
        riders = [rider(0, 5.0, p1, p2, wait=30.0)]  # 30s wait, driver far away
        drivers = [driver(0, GeoPoint(0.09, 0.09))]
        result = Simulation(riders, drivers, GRID, COST, NearestPolicy(), config()).run()
        assert result.served_orders == 0
        assert result.metrics.reneged_orders == 1
        assert result.riders[0].status is RiderStatus.RENEGED

    def test_driver_reused_after_dropoff(self):
        p1, p2 = GeoPoint(0.01, 0.01), GeoPoint(0.05, 0.05)
        riders = [
            rider(0, 0.0, p1, p2, wait=600.0),
            rider(1, 1200.0, p2, p1, wait=600.0),
        ]
        drivers = [driver(0, p1)]
        result = Simulation(riders, drivers, GRID, COST, NearestPolicy(), config()).run()
        assert result.served_orders == 2
        assert result.drivers[0].served_orders == 2

    def test_busy_driver_not_reassigned(self):
        p1, p2 = GeoPoint(0.01, 0.01), GeoPoint(0.09, 0.09)
        # Two simultaneous riders, one driver: second must renege.
        riders = [
            rider(0, 0.0, p1, p2, wait=60.0),
            rider(1, 0.0, p1.shifted(0.001), p2, wait=60.0),
        ]
        drivers = [driver(0, p1)]
        result = Simulation(riders, drivers, GRID, COST, NearestPolicy(), config()).run()
        assert result.served_orders == 1
        assert result.metrics.reneged_orders == 1

    def test_revenue_is_sum_of_served_trip_costs(self):
        rng = np.random.default_rng(0)
        riders = [
            rider(i, float(rng.uniform(0, 1800)), BOX.sample(rng), BOX.sample(rng))
            for i in range(30)
        ]
        drivers = [driver(j, BOX.sample(rng)) for j in range(5)]
        result = Simulation(riders, drivers, GRID, COST, NearestPolicy(), config()).run()
        served_revenue = sum(
            r.revenue for r in result.riders if r.status is RiderStatus.SERVED
        )
        assert result.total_revenue == pytest.approx(served_revenue)
        assert result.served_orders + result.metrics.reneged_orders <= len(riders)

    def test_upper_bound_ignores_pickup(self):
        p1, p2 = GeoPoint(0.01, 0.01), GeoPoint(0.08, 0.08)
        riders = [rider(0, 5.0, p1, p2, wait=1.0)]  # impossible deadline
        drivers = [driver(0, GeoPoint(0.09, 0.09))]
        # deadline is request+1s; batch at t=10 is past it → renege first.
        result = Simulation(riders, drivers, GRID, COST, UpperBoundPolicy(),
                            config(batch_interval_s=1.0)).run()
        # UPPER assigns at t=1 <= deadline(6): rider is served with zero eta.
        assert result.served_orders == 1
        assert result.riders[0].pickup_time_s == result.riders[0].assign_time_s

    def test_queueing_policy_records_idle_samples(self):
        rng = np.random.default_rng(1)
        riders = [
            rider(i, float(rng.uniform(0, 3000)), BOX.sample(rng), BOX.sample(rng))
            for i in range(60)
        ]
        drivers = [driver(j, BOX.sample(rng)) for j in range(3)]
        result = Simulation(
            riders, drivers, GRID, COST, QueueingPolicy("irg"), config()
        ).run()
        # Each driver reassignment after a dropoff contributes one sample.
        assert len(result.recorder.samples) > 0
        for s in result.recorder.samples:
            assert s.realized_idle_s >= 0

    def test_duplicate_ids_rejected(self):
        p = GeoPoint(0.01, 0.01)
        with pytest.raises(ValueError):
            Simulation(
                [rider(0, 0.0, p, p.shifted(0.01)), rider(0, 1.0, p, p.shifted(0.01))],
                [driver(0, p)], GRID, COST, NearestPolicy(), config(),
            )


class _BadPolicy(DispatchPolicy):
    """Deliberately violates the deadline to exercise engine validation."""

    name = "BAD"

    def plan_batch(self, snapshot):
        if snapshot.waiting_riders and snapshot.available_drivers:
            r = snapshot.waiting_riders[0]
            d = snapshot.available_drivers[0]
            return [Assignment(rider_id=r.rider_id, driver_id=d.driver_id,
                               pickup_eta_s=0.0)]
        return []


class TestEngineValidation:
    def test_invalid_pair_raises(self):
        p1 = GeoPoint(0.01, 0.01)
        riders = [rider(0, 0.0, p1, GeoPoint(0.05, 0.05), wait=20.0)]
        drivers = [driver(0, GeoPoint(0.09, 0.09))]  # ~1.2 km away at 10 m/s
        sim = Simulation(riders, drivers, GRID, COST, _BadPolicy(), config())
        with pytest.raises(ValueError, match="invalid pair"):
            sim.run()


class TestDemandSources:
    def test_oracle_counts_window(self):
        p = GeoPoint(0.01, 0.01)
        riders = [rider(i, 100.0 * i, p, GeoPoint(0.06, 0.06)) for i in range(10)]
        oracle = OracleDemand(riders, GRID.num_regions)
        counts = oracle.predict(150.0, 300.0)
        # Arrivals at 200, 300, 400 fall in [150, 450).
        assert counts[GRID.region_of(p)] == 3

    def test_zero_demand(self):
        z = ZeroDemand(4)
        assert z.predict(0.0, 600.0).sum() == 0.0

    def test_engine_predicted_drivers_counts_busy(self):
        p1, p2 = GeoPoint(0.01, 0.01), GeoPoint(0.08, 0.08)
        captured = {}

        class Spy(DispatchPolicy):
            name = "SPY"

            def plan_batch(self, snapshot):
                if snapshot.time_s == 20.0:
                    captured["pred"] = snapshot.predicted_drivers.copy()
                if snapshot.waiting_riders and snapshot.available_drivers:
                    r = snapshot.waiting_riders[0]
                    d = snapshot.available_drivers[0]
                    eta = snapshot.cost_model.travel_seconds(d.position, r.pickup)
                    if snapshot.time_s + eta <= r.deadline_s:
                        return [Assignment(r.rider_id, d.driver_id, eta)]
                return []

        riders = [rider(0, 5.0, p1, p2, wait=600.0)]
        drivers = [driver(0, p1)]
        # Trip takes ~1100s, so the window must be long enough to cover it.
        Simulation(riders, drivers, GRID, COST, Spy(), config(tc_seconds=2000.0)).run()
        # At t=20 the driver is busy heading to region of p2; the rejoin
        # should be predicted inside the 2000s window.
        assert captured["pred"][GRID.region_of(p2)] == 1
