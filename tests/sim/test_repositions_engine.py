"""Engine-level validation of reposition plans (error paths + effects)."""

import pytest

from repro.dispatch.base import Assignment, DispatchPolicy, Reposition
from repro.geo import BoundingBox, GeoPoint, GridPartition
from repro.roadnet.travel_time import StraightLineCost
from repro.sim.engine import SimConfig, Simulation
from repro.sim.entities import Driver, Rider

BOX = BoundingBox(0.0, 0.0, 0.06, 0.03)
GRID = GridPartition(BOX, rows=1, cols=2)
COST = StraightLineCost(speed_mps=10.0, metric="euclidean")
WEST = GeoPoint(0.015, 0.015)


class ScriptedPolicy(DispatchPolicy):
    """Returns fixed repositions once, for poking the engine directly."""

    name = "scripted"

    def __init__(self, repositions):
        self._repositions = list(repositions)
        self._fired = False

    def plan_batch(self, snapshot):
        return []

    def plan_repositions(self, snapshot):
        if self._fired:
            return []
        self._fired = True
        return self._repositions


def run_with(repositions, drivers=None):
    drivers = drivers or [Driver(0, WEST, 0)]
    rider = Rider(
        rider_id=0, request_time_s=0.0, pickup=WEST, dropoff=WEST.shifted(0.002),
        deadline_s=5000.0, trip_seconds=100.0, revenue=100.0,
        origin_region=0, destination_region=0,
    )
    sim = Simulation(
        [rider], drivers, GRID, COST, ScriptedPolicy(repositions),
        SimConfig(batch_interval_s=10.0, tc_seconds=600.0, horizon_s=100.0),
    )
    return sim.run()


class TestRepositionValidation:
    def test_unknown_driver_rejected(self):
        with pytest.raises(ValueError, match="unknown driver"):
            run_with([Reposition(driver_id=99, target_region=1)])

    def test_unknown_region_rejected(self):
        with pytest.raises(ValueError, match="unknown region"):
            run_with([Reposition(driver_id=0, target_region=7)])
        with pytest.raises(ValueError, match="unknown region"):
            run_with([Reposition(driver_id=0, target_region=-1)])

    def test_off_shift_driver_rejected(self):
        driver = Driver(0, WEST, 0, join_time_s=90_000.0,
                        available_since_s=90_000.0)
        with pytest.raises(ValueError, match="unavailable"):
            run_with([Reposition(driver_id=0, target_region=1)], [driver])

    def test_same_region_is_a_noop(self):
        result = run_with([Reposition(driver_id=0, target_region=0)])
        assert result.metrics.repositions == 0

    def test_move_relocates_and_occupies_driver(self):
        result = run_with([Reposition(driver_id=0, target_region=1)])
        assert result.metrics.repositions == 1
        driver = result.drivers[0]
        travel = COST.travel_seconds(WEST, GRID.center_of(1))
        assert driver.busy_until_s == pytest.approx(travel)
        assert driver.destination_region == 1
        assert driver.position == GRID.center_of(1)
        # Repositioning earns nothing (the scripted policy never assigns).
        assert result.total_revenue == 0.0
        assert result.served_orders == 0
