"""The optimised engine must reproduce the reference loop bit for bit.

:class:`~repro.sim.engine_reference.ReferenceSimulation` is the frozen seed
tick loop (full-fleet scans, heap-walk rejoin counts, a policy call every
tick).  On identical fixed-seed worlds the refactored
:class:`~repro.sim.engine.Simulation` — incremental fleet counters, tick
skipping, array snapshots — must produce exactly the same economics: same
revenue (``==``, not approx), same served/reneged counts, same per-rider
outcomes, and the same per-tick ``BatchMetrics`` series.
"""

import numpy as np
import pytest

from repro.dispatch import (
    LongTripPolicy,
    NearestPolicy,
    PolarPolicy,
    QueueingPolicy,
    RandomPolicy,
    RebalancingPolicy,
    UpperBoundPolicy,
)
from repro.geo import BoundingBox, GridPartition
from repro.roadnet.travel_time import StraightLineCost
from repro.sim.engine import SimConfig, Simulation
from repro.sim.engine_reference import ReferenceSimulation
from repro.sim.entities import Driver, Rider

BOX = BoundingBox(0.0, 0.0, 0.05, 0.04)
GRID = GridPartition(BOX, rows=3, cols=3)
COST = StraightLineCost(speed_mps=9.0, metric="manhattan")
CONFIG = SimConfig(batch_interval_s=5.0, tc_seconds=900.0, horizon_s=7200.0,
                   pickup_speed_mps=9.0)


def build_world(seed, num_riders=250, num_drivers=20, use_shifts=True):
    rng = np.random.default_rng(seed)
    riders = []
    for i in range(num_riders):
        t = float(rng.uniform(0.0, 5400.0))
        pickup = BOX.sample(rng)
        dropoff = BOX.sample(rng)
        trip = COST.travel_seconds(pickup, dropoff)
        riders.append(
            Rider(
                rider_id=i, request_time_s=t, pickup=pickup, dropoff=dropoff,
                deadline_s=t + float(rng.uniform(60.0, 360.0)),
                trip_seconds=trip, revenue=trip,
                origin_region=GRID.region_of(pickup),
                destination_region=GRID.region_of(dropoff),
            )
        )
    drivers = []
    for j in range(num_drivers):
        position = BOX.sample(rng)
        join, leave = 0.0, float("inf")
        if use_shifts and rng.random() < 0.5:
            join = float(rng.uniform(0.0, 1800.0))
            leave = join + float(rng.uniform(1200.0, 4800.0))
        drivers.append(
            Driver(
                j, position, GRID.region_of(position),
                join_time_s=join, leave_time_s=leave, available_since_s=join,
            )
        )
    return riders, drivers


POLICIES = {
    "NEAR": lambda seed: NearestPolicy(),
    "LTG": lambda seed: LongTripPolicy(),
    "RAND": lambda seed: RandomPolicy(rng=np.random.default_rng(seed)),
    "UPPER": lambda seed: UpperBoundPolicy(),
    "POLAR": lambda seed: PolarPolicy(),
    "IRG": lambda seed: QueueingPolicy("irg"),
    "LS": lambda seed: QueueingPolicy("ls"),
    "SHORT": lambda seed: QueueingPolicy("short"),
    "IRG-capped": lambda seed: QueueingPolicy("irg", max_drivers_per_rider=2),
    "IRG+RB": lambda seed: RebalancingPolicy(QueueingPolicy("irg")),
}


def run(engine_cls, policy_name, seed, config=CONFIG):
    riders, drivers = build_world(seed)
    sim = engine_cls(
        riders, drivers, GRID, COST, POLICIES[policy_name](seed), config
    )
    return sim.run()


def assert_identical(a, b):
    assert a.metrics.total_revenue == b.metrics.total_revenue
    assert a.metrics.served_orders == b.metrics.served_orders
    assert a.metrics.reneged_orders == b.metrics.reneged_orders
    assert a.metrics.repositions == b.metrics.repositions
    for ra, rb in zip(a.riders, b.riders):
        assert ra.status is rb.status
        assert ra.driver_id == rb.driver_id
        assert ra.assign_time_s == rb.assign_time_s
        assert ra.pickup_time_s == rb.pickup_time_s
    assert len(a.metrics.batches) == len(b.metrics.batches)
    for ba, bb in zip(a.metrics.batches, b.metrics.batches):
        assert ba.time_s == bb.time_s
        assert ba.waiting_riders == bb.waiting_riders
        assert ba.available_drivers == bb.available_drivers
        assert ba.assignments == bb.assignments
    assert len(a.recorder.samples) == len(b.recorder.samples)
    for sa, sb in zip(a.recorder.samples, b.recorder.samples):
        assert sa == sb


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_engine_matches_reference(policy_name):
    for seed in (11, 23):
        reference = run(ReferenceSimulation, policy_name, seed)
        optimised = run(Simulation, policy_name, seed)
        assert_identical(reference, optimised)


def test_tick_skipping_changes_nothing():
    """skip_empty_ticks on/off must be observationally identical."""
    no_skip = SimConfig(
        batch_interval_s=5.0, tc_seconds=900.0, horizon_s=7200.0,
        pickup_speed_mps=9.0, skip_empty_ticks=False,
    )
    for policy_name in ("IRG", "NEAR"):
        skipping = run(Simulation, policy_name, 31)
        plain = run(Simulation, policy_name, 31, config=no_skip)
        assert_identical(skipping, plain)
