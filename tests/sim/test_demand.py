"""Tests of the demand sources."""

import numpy as np
import pytest

from repro.geo import BoundingBox, GeoPoint, GridPartition
from repro.roadnet.travel_time import StraightLineCost
from repro.sim.demand import (
    CachedDemand,
    NoisyOracleDemand,
    OracleDemand,
    SlotModelDemand,
    ZeroDemand,
)
from repro.sim.entities import Rider

BOX = BoundingBox(0.0, 0.0, 0.1, 0.1)
GRID = GridPartition(BOX, rows=2, cols=2)
COST = StraightLineCost(speed_mps=10.0, metric="euclidean")


def rider_at(rider_id, t, point):
    return Rider(
        rider_id=rider_id,
        request_time_s=t,
        pickup=point,
        dropoff=point.shifted(0.01, 0.01),
        deadline_s=t + 120,
        trip_seconds=100.0,
        revenue=100.0,
        origin_region=GRID.region_of(point),
        destination_region=GRID.region_of(point.shifted(0.01, 0.01)),
    )


class TestSlotModelDemand:
    def test_full_slot_window(self):
        matrix = np.array([[4.0, 0.0], [8.0, 2.0]])
        demand = SlotModelDemand(matrix, slot_seconds=100.0)
        np.testing.assert_allclose(demand.predict(0.0, 100.0), [4.0, 0.0])

    def test_half_slot_window(self):
        matrix = np.array([[4.0, 0.0], [8.0, 2.0]])
        demand = SlotModelDemand(matrix, slot_seconds=100.0)
        np.testing.assert_allclose(demand.predict(0.0, 50.0), [2.0, 0.0])

    def test_straddling_window(self):
        matrix = np.array([[4.0, 0.0], [8.0, 2.0]])
        demand = SlotModelDemand(matrix, slot_seconds=100.0)
        np.testing.assert_allclose(demand.predict(50.0, 100.0), [6.0, 1.0])

    def test_past_end_reuses_last_slot(self):
        matrix = np.array([[4.0, 0.0], [8.0, 2.0]])
        demand = SlotModelDemand(matrix, slot_seconds=100.0)
        np.testing.assert_allclose(demand.predict(250.0, 100.0), [8.0, 2.0])

    def test_negative_predictions_clipped(self):
        demand = SlotModelDemand(np.array([[-3.0, 1.0]]), slot_seconds=60.0)
        assert demand.predict(0.0, 60.0)[0] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SlotModelDemand(np.zeros(3), 60.0)
        with pytest.raises(ValueError):
            SlotModelDemand(np.zeros((2, 2)), 0.0)


class TestNoisyOracle:
    def test_zero_sigma_is_exact(self):
        riders = [rider_at(i, 10.0 * i, GeoPoint(0.01, 0.01)) for i in range(5)]
        oracle = OracleDemand(riders, GRID.num_regions)
        noisy = NoisyOracleDemand(oracle, sigma=0.0, rng=np.random.default_rng(0))
        np.testing.assert_allclose(
            noisy.predict(0.0, 100.0), oracle.predict(0.0, 100.0)
        )

    def test_noise_perturbs_but_preserves_support(self):
        riders = [rider_at(i, 10.0 * i, GeoPoint(0.01, 0.01)) for i in range(5)]
        oracle = OracleDemand(riders, GRID.num_regions)
        noisy = NoisyOracleDemand(oracle, sigma=0.5, rng=np.random.default_rng(0))
        truth = oracle.predict(0.0, 100.0)
        pred = noisy.predict(0.0, 100.0)
        assert (pred[truth == 0] == 0).all()
        assert not np.allclose(pred, truth)


class TestCachedDemand:
    class _Counting:
        def __init__(self):
            self.calls = 0
            self.num_regions = 2

        def predict(self, start_s, window_s):
            self.calls += 1
            return np.array([start_s, window_s])

    def test_same_quantum_shares_one_call(self):
        inner = self._Counting()
        cached = CachedDemand(inner, quantum_s=15.0)
        cached.predict(0.0, 600.0)
        cached.predict(3.0, 600.0)
        cached.predict(14.9, 600.0)
        assert inner.calls == 1

    def test_new_quantum_triggers_call(self):
        inner = self._Counting()
        cached = CachedDemand(inner, quantum_s=15.0)
        cached.predict(0.0, 600.0)
        cached.predict(15.0, 600.0)
        assert inner.calls == 2

    def test_quantum_zero_disables(self):
        inner = self._Counting()
        cached = CachedDemand(inner, quantum_s=0.0)
        cached.predict(0.0, 600.0)
        cached.predict(0.0, 600.0)
        assert inner.calls == 2

    def test_different_windows_not_conflated(self):
        inner = self._Counting()
        cached = CachedDemand(inner, quantum_s=15.0)
        a = cached.predict(0.0, 600.0)
        b = cached.predict(0.0, 1200.0)
        assert a[1] != b[1]
