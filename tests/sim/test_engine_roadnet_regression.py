"""Engine regression on a road-graph scenario, pinned against the scalar path.

The batched road-network backend (shared-frontier Dijkstra, ALT pruning,
snap cache) must leave the simulation's economics untouched: the vectorized
engine with the batched backend produces the same served orders, revenue,
and assignment stream as

- the vectorized engine with the *scalar* candidate backend (per-pair A*
  ETAs), and
- the frozen seed engine (:class:`ReferenceSimulation`) with the scalar
  backend.

Workloads reuse fresh entity lists per run (the engines mutate riders and
drivers in place) but share one road graph; cost-model instances are
separate per run so each path genuinely recomputes its ETAs.
"""

import numpy as np
import pytest

from repro.dispatch import NearestPolicy, QueueingPolicy
from repro.dispatch.base import set_candidate_backend
from repro.experiments.config import ExperimentConfig
from repro.geo import BoundingBox, GridPartition
from repro.roadnet import RoadNetworkCost, build_grid_network
from repro.sim.engine import SimConfig, Simulation
from repro.sim.engine_reference import ReferenceSimulation
from repro.sim.entities import Driver, Rider

BOX = BoundingBox(-74.00, 40.70, -73.96, 40.73)
GRID = GridPartition(BOX, rows=3, cols=3)
SPEED = 8.0
CONFIG = SimConfig(batch_interval_s=10.0, tc_seconds=600.0, horizon_s=5400.0)


@pytest.fixture(scope="module")
def network():
    return build_grid_network(
        BOX,
        rows=14,
        cols=14,
        speed_mps=SPEED,
        speed_jitter=0.25,
        diagonal_fraction=0.1,
        rng=np.random.default_rng(8),
    )


def make_workload(cost_model, num_riders=150, num_drivers=12, seed=4):
    rng = np.random.default_rng(seed)
    riders = []
    for i in range(num_riders):
        t = float(rng.uniform(0.0, CONFIG.horizon_s * 0.8))
        pickup = BOX.sample(rng)
        dropoff = BOX.sample(rng)
        trip = cost_model.travel_seconds(pickup, dropoff)
        riders.append(
            Rider(
                rider_id=i, request_time_s=t, pickup=pickup, dropoff=dropoff,
                deadline_s=t + 300.0, trip_seconds=trip, revenue=trip,
                origin_region=GRID.region_of(pickup),
                destination_region=GRID.region_of(dropoff),
            )
        )
    drivers = []
    for j in range(num_drivers):
        position = BOX.sample(rng)
        drivers.append(Driver(j, position, GRID.region_of(position)))
    return riders, drivers


def run_once(network, engine_cls, backend, policy_factory, num_landmarks):
    cost_model = RoadNetworkCost(
        network, access_speed_mps=SPEED, num_landmarks=num_landmarks
    )
    riders, drivers = make_workload(cost_model)
    previous = set_candidate_backend(backend)
    try:
        sim = engine_cls(
            riders, drivers, GRID, cost_model, policy_factory(), CONFIG
        )
        result = sim.run()
    finally:
        set_candidate_backend(previous)
    metrics = result.metrics
    assignments = tuple(
        (r.rider_id, r.driver_id, r.assign_time_s)
        for r in sorted(riders, key=lambda r: r.rider_id)
        if r.driver_id is not None
    )
    return {
        "served": metrics.served_orders,
        "reneged": metrics.reneged_orders,
        "revenue": metrics.total_revenue,
        "assignments": assignments,
    }


@pytest.mark.parametrize(
    "policy_factory", [NearestPolicy, lambda: QueueingPolicy("irg")],
    ids=["NEAR", "IRG"],
)
def test_batched_backend_matches_scalar_backend(network, policy_factory):
    batched = run_once(network, Simulation, "vectorized", policy_factory,
                       num_landmarks=6)
    scalar = run_once(network, Simulation, "scalar", policy_factory,
                      num_landmarks=0)
    assert batched == scalar


def test_vectorized_engine_matches_seed_engine_on_road_graph(network):
    vectorized = run_once(network, Simulation, "vectorized", NearestPolicy,
                          num_landmarks=6)
    seed = run_once(network, ReferenceSimulation, "scalar", NearestPolicy,
                    num_landmarks=0)
    assert vectorized == seed


def test_experiment_config_landmark_knob_builds_model(network):
    """`ExperimentConfig.roadnet_landmarks` wires through to the cost model."""
    config = ExperimentConfig(roadnet_landmarks=3)
    model = RoadNetworkCost(network, num_landmarks=config.roadnet_landmarks)
    assert model.landmarks is not None
    assert model.landmarks.num_landmarks == 3
    with pytest.raises(ValueError):
        ExperimentConfig(roadnet_landmarks=-1)
