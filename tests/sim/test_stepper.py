"""The tickable stepper must be the offline replay, bit for bit.

:class:`~repro.sim.engine.Simulation` is now a thin driver over
:class:`~repro.sim.stepper.SimulationStepper`; these tests pin the
contract that makes the online service trustworthy:

- driving a stepper *serve-style* — requests ingested incrementally as
  their windows open, one explicit ``step()`` per batch boundary — equals
  ``Simulation.run()`` on the same trace exactly (economics, per-rider
  outcomes, per-tick series), across policies and candidate backends;
- late or out-of-order requests join the next batch and are never
  dropped;
- ``advance_to`` is the same clock walk as stepping each boundary;
- per-phase profiling accumulates in the stepper, so serve ticks and
  offline replays are profiled identically.
"""

import numpy as np
import pytest

from repro.dispatch import NearestPolicy
from repro.dispatch.base import set_candidate_backend
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    _build_riders_and_drivers,
    _make_policy,
    clear_caches,
)
from repro.geo import BoundingBox, GridPartition
from repro.roadnet.travel_time import StraightLineCost
from repro.sim.demand import OracleDemand
from repro.sim.engine import SimConfig, Simulation
from repro.sim.entities import Driver, Rider, RiderStatus
from repro.sim.stepper import SimulationStepper, num_batches_for_horizon

CONFIG = ExperimentConfig(
    daily_orders=2_000.0,
    num_drivers=16,
    horizon_s=4 * 3600.0,
    batch_interval_s=10.0,
    space_scale=0.1,
    grid_rows=3,
    grid_cols=3,
)


@pytest.fixture(autouse=True, scope="module")
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _sim_config(config, **overrides):
    params = dict(
        batch_interval_s=config.batch_interval_s,
        tc_seconds=config.tc_seconds,
        horizon_s=config.horizon_s,
        pickup_speed_mps=config.speed_mps,
    )
    params.update(overrides)
    return SimConfig(**params)


def run_offline(config, policy_name):
    riders, drivers, grid, cost_model = _build_riders_and_drivers(config)
    sim = Simulation(
        riders,
        drivers,
        grid,
        cost_model,
        _make_policy(policy_name, config),
        _sim_config(config),
        demand=OracleDemand(riders, grid.num_regions),
    )
    return sim.run()


def run_serve_style(config, policy_name):
    """Drive a bare stepper the way the online service does.

    Requests are ingested just before the batch boundary that first
    considers them (not preloaded), and every boundary is stepped
    explicitly — no ``Simulation`` in the loop.
    """
    riders, drivers, grid, cost_model = _build_riders_and_drivers(config)
    stepper = SimulationStepper(
        drivers,
        grid,
        cost_model,
        _make_policy(policy_name, config),
        _sim_config(config),
        demand=OracleDemand(riders, grid.num_regions),
    )
    stream = sorted(riders, key=lambda r: (r.request_time_s, r.rider_id))
    cursor = 0
    delta = config.batch_interval_s
    for batch_index in range(num_batches_for_horizon(config.horizon_s, delta)):
        now = batch_index * delta
        due = cursor
        while due < len(stream) and stream[due].request_time_s <= now:
            due += 1
        if due > cursor:
            stepper.ingest(stream[cursor:due])
            cursor = due
        stepper.step(now)
    if cursor < len(stream):
        # The beyond-horizon tail: offline preloads it (it counts toward
        # total_orders but is never admitted); stream it too.
        stepper.ingest(stream[cursor:])
    metrics = stepper.finalize()
    return metrics, riders, stepper


def assert_equivalent(offline, serve_metrics, serve_riders, stepper):
    assert serve_metrics.total_revenue == offline.metrics.total_revenue
    assert serve_metrics.served_orders == offline.metrics.served_orders
    assert serve_metrics.reneged_orders == offline.metrics.reneged_orders
    assert serve_metrics.repositions == offline.metrics.repositions
    assert serve_metrics.total_orders == offline.metrics.total_orders
    offline_riders = {r.rider_id: r for r in offline.riders}
    for rider in serve_riders:
        other = offline_riders[rider.rider_id]
        assert rider.status is other.status
        assert rider.driver_id == other.driver_id
        assert rider.assign_time_s == other.assign_time_s
        assert rider.pickup_time_s == other.pickup_time_s
    assert len(serve_metrics.batches) == len(offline.metrics.batches)
    for ba, bb in zip(serve_metrics.batches, offline.metrics.batches):
        assert ba.time_s == bb.time_s
        assert ba.waiting_riders == bb.waiting_riders
        assert ba.available_drivers == bb.available_drivers
        assert ba.assignments == bb.assignments
    assert stepper.recorder.samples == offline.recorder.samples


@pytest.mark.parametrize("backend", ["vectorized", "scalar"])
@pytest.mark.parametrize("policy_name", ["NEAR", "IRG-R", "LS-R"])
def test_serve_style_stepper_equals_offline_run(policy_name, backend):
    previous = set_candidate_backend(backend)
    try:
        offline = run_offline(CONFIG, policy_name)
        serve_metrics, serve_riders, stepper = run_serve_style(
            CONFIG, policy_name
        )
    finally:
        set_candidate_backend(previous)
    assert_equivalent(offline, serve_metrics, serve_riders, stepper)
    assert serve_metrics.served_orders > 0  # the world is non-degenerate


def test_advance_to_is_the_same_clock_walk():
    offline = run_offline(CONFIG, "NEAR")
    riders, drivers, grid, cost_model = _build_riders_and_drivers(CONFIG)
    stepper = SimulationStepper(
        drivers,
        grid,
        cost_model,
        _make_policy("NEAR", CONFIG),
        _sim_config(CONFIG),
        demand=OracleDemand(riders, grid.num_regions),
    )
    stepper.ingest(riders)
    outcomes = stepper.advance_to(CONFIG.horizon_s)
    metrics = stepper.finalize()
    assert len(outcomes) == num_batches_for_horizon(
        CONFIG.horizon_s, CONFIG.batch_interval_s
    )
    assert_equivalent(offline, metrics, riders, stepper)
    assert sum(len(o.assignments) for o in outcomes) == metrics.served_orders
    assert sum(o.repositions for o in outcomes) == metrics.repositions


# -- a tiny hand-built world for intake-semantics tests ----------------------

BOX = BoundingBox(0.0, 0.0, 0.05, 0.04)
GRID = GridPartition(BOX, rows=2, cols=2)
COST = StraightLineCost(speed_mps=9.0, metric="manhattan")


def make_stepper(num_drivers=3, **config_overrides):
    rng = np.random.default_rng(7)
    drivers = []
    for j in range(num_drivers):
        position = BOX.sample(rng)
        drivers.append(
            Driver(j, position, GRID.region_of(position))
        )
    params = dict(
        batch_interval_s=5.0, tc_seconds=900.0, horizon_s=3600.0,
        pickup_speed_mps=9.0,
    )
    params.update(config_overrides)
    return SimulationStepper(
        drivers,
        GRID,
        COST,
        NearestPolicy(),
        SimConfig(**params),
        demand=OracleDemand([], GRID.num_regions),
    ), drivers


def make_rider(rider_id, request_time_s, patience_s=600.0):
    pickup = BOX.sample(np.random.default_rng(100 + rider_id))
    dropoff = BOX.sample(np.random.default_rng(200 + rider_id))
    trip = COST.travel_seconds(pickup, dropoff)
    return Rider(
        rider_id=rider_id, request_time_s=request_time_s,
        pickup=pickup, dropoff=dropoff,
        deadline_s=request_time_s + patience_s,
        trip_seconds=trip, revenue=trip,
        origin_region=GRID.region_of(pickup),
        destination_region=GRID.region_of(dropoff),
    )


class TestLateIngestion:
    def test_late_request_joins_next_batch(self):
        """A request whose window already ticked is admitted next tick."""
        stepper, _ = make_stepper()
        stepper.advance_to(50.0)  # the clock is now well past t=10
        late = make_rider(0, request_time_s=10.0)
        stepper.ingest([late])
        assert stepper.pending_count == 1
        outcome = stepper.step()  # t=55: the very next batch window
        assert stepper.pending_count == 0
        # Admitted and immediately assigned (drivers were all idle).
        assert [a.rider_id for a in outcome.assignments] == [0]
        assert late.status is RiderStatus.SERVED
        assert late.assign_time_s == outcome.time_s

    def test_expired_request_reneges_rather_than_vanishing(self):
        """Even a past-deadline request is accounted, never dropped."""
        stepper, _ = make_stepper()
        stepper.advance_to(1000.0)
        expired = make_rider(1, request_time_s=10.0, patience_s=60.0)
        stepper.ingest([expired])
        assert stepper.metrics.total_orders == 1
        # Admitted at t=1005 and reneged by the same tick's renege drain
        # (the deadline passed long before the window opened).
        stepper.step()
        assert expired.status is RiderStatus.RENEGED
        assert stepper.metrics.reneged_orders == 1
        assert stepper.waiting_count == 0

    def test_out_of_order_ingestion_admits_in_request_order(self):
        stepper, _ = make_stepper(num_drivers=0)
        stepper.ingest([make_rider(5, 12.0)])
        stepper.ingest([make_rider(3, 4.0)])
        stepper.advance_to(15.0)
        # Both admitted; with no drivers they simply wait.
        assert stepper.waiting_count == 2
        assert stepper.pending_count == 0

    def test_duplicate_rider_id_raises(self):
        stepper, _ = make_stepper()
        stepper.ingest([make_rider(9, 0.0)])
        with pytest.raises(ValueError, match="duplicate rider ids"):
            stepper.ingest([make_rider(9, 5.0)])


class TestStepperContract:
    def test_step_times_must_strictly_increase(self):
        stepper, _ = make_stepper()
        stepper.step(10.0)
        with pytest.raises(ValueError, match="strictly increasing"):
            stepper.step(10.0)

    def test_requires_explicit_demand(self):
        with pytest.raises(ValueError, match="demand"):
            SimulationStepper([], GRID, COST, NearestPolicy(), SimConfig())

    def test_finalize_is_idempotent_and_reneges_waiters(self):
        stepper, _ = make_stepper(num_drivers=0)
        stepper.ingest([make_rider(2, 0.0)])
        stepper.step(0.0)
        first = stepper.finalize()
        assert first.reneged_orders == 1
        assert stepper.finalize() is first
        with pytest.raises(RuntimeError, match="finalized"):
            stepper.step()

    def test_profile_phases_accumulate_in_stepper(self):
        """Serve-mode ticks profile exactly like offline replays."""
        stepper, _ = make_stepper(profile_phases=True)
        assert set(stepper.metrics.phase_seconds) == {
            "event_drain", "snapshot_build", "plan_candidates",
            "plan_policy", "apply",
        }
        stepper.ingest([make_rider(0, 0.0), make_rider(1, 3.0)])
        stepper.advance_to(30.0)
        phases = stepper.metrics.phase_seconds
        assert all(v >= 0.0 for v in phases.values())
        # At least one planned (unskipped) tick; the policy side of the
        # plan split always accrues wall time on such a tick.
        assert phases["plan_policy"] > 0.0
