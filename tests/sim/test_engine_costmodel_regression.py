"""Config-path regression: roadnet-priced runs are engine/backend invariant.

The cost-model layer must not open any gap between the execution paths: a
run priced by ``cost_model="roadnet"`` / ``"roadnet_tod"`` — built through
the real :func:`~repro.experiments.runner.build_world` factory path, not a
hand-assembled graph — produces bit-identical economics and assignment
streams under

- the vectorized engine with the batched (deadline-bounded, ALT-pruned)
  candidate backend,
- the vectorized engine with the ``"scalar"`` per-pair reference backend,
- the frozen seed engine (:class:`ReferenceSimulation`) with the scalar
  backend.

The horizon crosses the 7 A.M. rush boundary so the time-of-day model
genuinely switches congestion slots mid-run.
"""

import pytest

from repro.dispatch.base import set_candidate_backend
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    _build_riders_and_drivers,
    _make_policy,
    clear_caches,
)
from repro.sim.demand import OracleDemand
from repro.sim.engine import SimConfig, Simulation
from repro.sim.engine_reference import ReferenceSimulation

#: Small but real: 2k orders/day over a 3x3 grid, horizon past the 7 A.M.
#: rush boundary so ``roadnet_tod`` changes slots mid-run.
CONFIG = ExperimentConfig(
    daily_orders=2_000.0,
    num_drivers=16,
    horizon_s=9 * 3600.0,
    batch_interval_s=10.0,
    space_scale=0.1,
    grid_rows=3,
    grid_cols=3,
)


@pytest.fixture(autouse=True, scope="module")
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


def run_once(config, engine_cls, backend, policy_name):
    riders, drivers, grid, cost_model = _build_riders_and_drivers(config)
    policy = _make_policy(policy_name, config)
    demand = OracleDemand(riders, grid.num_regions)
    previous = set_candidate_backend(backend)
    try:
        sim = engine_cls(
            riders,
            drivers,
            grid,
            cost_model,
            policy,
            SimConfig(
                batch_interval_s=config.batch_interval_s,
                tc_seconds=config.tc_seconds,
                horizon_s=config.horizon_s,
                pickup_speed_mps=config.speed_mps,
            ),
            demand=demand,
        )
        result = sim.run()
    finally:
        set_candidate_backend(previous)
    metrics = result.metrics
    assignments = tuple(
        (r.rider_id, r.driver_id, r.assign_time_s, r.pickup_time_s)
        for r in sorted(riders, key=lambda r: r.rider_id)
        if r.driver_id is not None
    )
    return {
        "served": metrics.served_orders,
        "reneged": metrics.reneged_orders,
        "revenue": metrics.total_revenue,
        "assignments": assignments,
    }


@pytest.mark.parametrize("cost_model", ["roadnet", "roadnet_tod"])
@pytest.mark.parametrize("policy", ["NEAR", "IRG-R"])
def test_vectorized_scalar_and_seed_engine_agree(cost_model, policy):
    config = CONFIG.replace(cost_model=cost_model)
    vectorized = run_once(config, Simulation, "vectorized", policy)
    scalar = run_once(config, Simulation, "scalar", policy)
    reference = run_once(config, ReferenceSimulation, "scalar", policy)
    assert vectorized == scalar
    assert vectorized == reference
    assert vectorized["served"] > 0  # the scenario actually dispatches


def test_stranded_tick_skipping_observes_congestion_easing():
    """A congestion-easing slot boundary can make a stranded pair feasible
    with no new rider or driver, so the engine must not skip stranded
    ticks under a clock-carrying cost model.

    One rider, one driver: at request time the rush multiplier makes the
    pickup miss the deadline, but the patience window spans the boundary
    into free flow, where the pickup fits easily.  A skipping engine that
    assumed static ETAs would never re-plan (nothing arrives, nothing is
    released) and the rider would renege.
    """
    import numpy as np

    from repro.dispatch import NearestPolicy
    from repro.geo import BoundingBox, GridPartition
    from repro.roadnet import (
        CongestionPeriod,
        TimeVaryingRoadNetworkCost,
        build_grid_network,
    )
    from repro.sim.entities import Driver, Rider

    box = BoundingBox(-74.00, 40.70, -73.985, 40.715)
    grid = GridPartition(box, rows=2, cols=2)
    graph = build_grid_network(box, rows=2, cols=2, speed_mps=8.0)
    periods = (
        CongestionPeriod(0.0, 1.0, 10.0),  # crawling first hour
        CongestionPeriod(1.0, 24.0, 1.0),  # free flow after
    )
    model = TimeVaryingRoadNetworkCost(graph, periods, access_speed_mps=8.0)

    # Endpoints sit exactly on lattice vertices (no access legs).
    driver_pos = graph.position(0)
    pickup = graph.position(3)
    dropoff = graph.position(1)
    model.set_time(0.0)
    assert model.travel_seconds(driver_pos, pickup) > 1200.0  # rush: misses
    model.set_time(3600.0)
    free_eta = model.travel_seconds(driver_pos, pickup)
    assert free_eta < 900.0  # free flow: fits

    def build():
        rider = Rider(
            rider_id=0,
            request_time_s=3300.0,  # 55 min — 20 min patience spans 60 min
            pickup=pickup,
            dropoff=dropoff,
            deadline_s=4500.0,
            trip_seconds=600.0,
            revenue=600.0,
            origin_region=grid.region_of(pickup),
            destination_region=grid.region_of(dropoff),
        )
        driver = Driver(0, driver_pos, grid.region_of(driver_pos))
        return [rider], [driver]

    config = SimConfig(
        batch_interval_s=30.0,
        tc_seconds=600.0,
        horizon_s=2 * 3600.0,
        pickup_speed_mps=8.0,
    )
    results = {}
    for name, engine_cls in (
        ("vectorized", Simulation),
        ("reference", ReferenceSimulation),
    ):
        riders, drivers = build()
        res = engine_cls(
            riders, drivers, grid, model, NearestPolicy(), config
        ).run()
        results[name] = (
            res.metrics.served_orders,
            res.metrics.total_revenue,
            riders[0].assign_time_s,
        )
    assert results["vectorized"] == results["reference"]
    served, _, assign_time = results["vectorized"]
    assert served == 1, "the easing boundary never got a chance to match"
    assert assign_time is not None and assign_time >= 3600.0
    assert np.isfinite(results["vectorized"][1])


def test_tod_diverges_from_static_roadnet_after_rush():
    """The congestion profile must change the simulation (the horizon
    crosses 7 A.M.), otherwise the tod path silently prices free-flow."""
    static = run_once(
        CONFIG.replace(cost_model="roadnet"), Simulation, "vectorized", "NEAR"
    )
    tod = run_once(
        CONFIG.replace(cost_model="roadnet_tod"),
        Simulation,
        "vectorized",
        "NEAR",
    )
    assert static != tod
