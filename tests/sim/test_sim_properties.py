"""Property-based invariants of the whole simulation engine.

Random mini-worlds are generated from a seed and run under every policy
family; the engine must uphold the accounting and validity invariants of
§2 regardless of the policy's choices.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dispatch import (
    LongTripPolicy,
    NearestPolicy,
    QueueingPolicy,
    RandomPolicy,
    UpperBoundPolicy,
)
from repro.geo import BoundingBox, GridPartition
from repro.roadnet.travel_time import StraightLineCost
from repro.sim.engine import SimConfig, Simulation
from repro.sim.entities import Driver, Rider, RiderStatus

BOX = BoundingBox(0.0, 0.0, 0.03, 0.03)
COST = StraightLineCost(speed_mps=10.0, metric="euclidean")


def build_world(seed, num_riders, num_drivers, rows, cols, use_shifts):
    rng = np.random.default_rng(seed)
    grid = GridPartition(BOX, rows=rows, cols=cols)
    riders = []
    for i in range(num_riders):
        t = float(rng.uniform(0.0, 1600.0))
        pickup = BOX.sample(rng)
        dropoff = BOX.sample(rng)
        trip = COST.travel_seconds(pickup, dropoff)
        riders.append(
            Rider(
                rider_id=i, request_time_s=t, pickup=pickup, dropoff=dropoff,
                deadline_s=t + float(rng.uniform(60.0, 400.0)),
                trip_seconds=trip, revenue=trip,
                origin_region=grid.region_of(pickup),
                destination_region=grid.region_of(dropoff),
            )
        )
    drivers = []
    for j in range(num_drivers):
        position = BOX.sample(rng)
        join, leave = 0.0, float("inf")
        if use_shifts:
            join = float(rng.uniform(0.0, 600.0))
            leave = join + float(rng.uniform(800.0, 2400.0))
        drivers.append(
            Driver(
                j, position, grid.region_of(position),
                available_since_s=join, join_time_s=join, leave_time_s=leave,
            )
        )
    return riders, drivers, grid


def make_policy(kind, seed):
    if kind == "irg":
        return QueueingPolicy("irg")
    if kind == "ls":
        return QueueingPolicy("ls")
    if kind == "short":
        return QueueingPolicy("short")
    if kind == "near":
        return NearestPolicy()
    if kind == "ltg":
        return LongTripPolicy()
    if kind == "rand":
        return RandomPolicy(rng=np.random.default_rng(seed))
    return UpperBoundPolicy()


POLICY_KINDS = ("irg", "ls", "short", "near", "ltg", "rand", "upper")


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_riders=st.integers(min_value=1, max_value=40),
    num_drivers=st.integers(min_value=1, max_value=6),
    rows=st.integers(min_value=1, max_value=3),
    cols=st.integers(min_value=1, max_value=3),
    policy_kind=st.sampled_from(POLICY_KINDS),
    use_shifts=st.booleans(),
)
def test_engine_invariants_hold_for_any_world(
    seed, num_riders, num_drivers, rows, cols, policy_kind, use_shifts
):
    riders, drivers, grid = build_world(
        seed, num_riders, num_drivers, rows, cols, use_shifts
    )
    sim = Simulation(
        riders, drivers, grid, COST, make_policy(policy_kind, seed),
        SimConfig(batch_interval_s=15.0, tc_seconds=600.0, horizon_s=2400.0),
    )
    result = sim.run()

    # 1. Conservation: every rider either served or reneged.
    served = [r for r in result.riders if r.status is RiderStatus.SERVED]
    assert len(served) == result.served_orders
    assert result.served_orders + result.metrics.reneged_orders == len(riders)

    # 2. Revenue equals the sum of served riders' revenues (Eq. 1).
    assert result.total_revenue == pytest.approx(sum(r.revenue for r in served))

    # 3. Deadline validity (Definition 3) — except UPPER, which by design
    #    teleports drivers to measure the no-deadhead bound.
    if policy_kind != "upper":
        for rider in served:
            assert rider.pickup_time_s <= rider.deadline_s + 1e-6

    # 4. No driver serves overlapping rides.
    by_driver = {}
    for rider in served:
        by_driver.setdefault(rider.driver_id, []).append(rider)
    for rides in by_driver.values():
        rides.sort(key=lambda r: r.assign_time_s)
        for a, b in zip(rides, rides[1:]):
            assert b.assign_time_s >= a.dropoff_time_s - 1e-6

    # 5. Shifted drivers never assigned outside their lifetime.
    if use_shifts:
        driver_by_id = {d.driver_id: d for d in drivers}
        for rider in served:
            driver = driver_by_id[rider.driver_id]
            assert driver.join_time_s <= rider.assign_time_s < driver.leave_time_s


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    policy_kind=st.sampled_from(("irg", "near", "rand")),
)
def test_simulation_is_deterministic(seed, policy_kind):
    """Two runs of the same world produce identical outcomes."""

    def run_once():
        riders, drivers, grid = build_world(seed, 25, 3, 2, 2, False)
        sim = Simulation(
            riders, drivers, grid, COST, make_policy(policy_kind, seed),
            SimConfig(batch_interval_s=15.0, tc_seconds=600.0, horizon_s=2400.0),
        )
        result = sim.run()
        return (
            result.total_revenue,
            result.served_orders,
            tuple(r.driver_id for r in result.riders),
        )

    assert run_once() == run_once()
