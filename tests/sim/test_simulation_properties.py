"""Property-based invariants of the simulation engine.

Hypothesis drives random small worlds through the engine under several
policies and checks conservation laws that must hold regardless of policy
behaviour: rider accounting, revenue accounting, driver exclusivity, and
temporal ordering of every rider's lifecycle.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dispatch import NearestPolicy, QueueingPolicy, RandomPolicy
from repro.dispatch.batch_optimal import BatchOptimalPolicy
from repro.geo import BoundingBox, GridPartition
from repro.roadnet.travel_time import StraightLineCost
from repro.sim.engine import SimConfig, Simulation
from repro.sim.entities import Driver, Rider, RiderStatus

BOX = BoundingBox(0.0, 0.0, 0.05, 0.05)
GRID = GridPartition(BOX, rows=2, cols=2)
COST = StraightLineCost(speed_mps=10.0, metric="euclidean")


def make_world(seed, num_riders, num_drivers, wait_s):
    rng = np.random.default_rng(seed)
    riders = []
    for i in range(num_riders):
        pickup = BOX.sample(rng)
        dropoff = BOX.sample(rng)
        t = float(rng.uniform(0, 1800))
        trip = COST.travel_seconds(pickup, dropoff)
        riders.append(
            Rider(
                rider_id=i,
                request_time_s=t,
                pickup=pickup,
                dropoff=dropoff,
                deadline_s=t + wait_s,
                trip_seconds=trip,
                revenue=trip,
                origin_region=GRID.region_of(pickup),
                destination_region=GRID.region_of(dropoff),
            )
        )
    drivers = [
        Driver(driver_id=j, position=BOX.sample(rng),
               region=GRID.region_of(BOX.sample(rng)))
        for j in range(num_drivers)
    ]
    return riders, drivers


def run_world(policy, seed=0, num_riders=40, num_drivers=4, wait_s=120.0):
    riders, drivers = make_world(seed, num_riders, num_drivers, wait_s)
    sim = Simulation(
        riders, drivers, GRID, COST, policy,
        SimConfig(batch_interval_s=15.0, tc_seconds=600.0, horizon_s=3600.0),
    )
    return sim.run()


POLICIES = {
    "near": lambda: NearestPolicy(),
    "rand": lambda: RandomPolicy(np.random.default_rng(5)),
    "irg": lambda: QueueingPolicy("irg"),
    "ls": lambda: QueueingPolicy("ls"),
    "short": lambda: QueueingPolicy("short"),
    "opt": lambda: BatchOptimalPolicy(),
}


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=500),
    policy_key=st.sampled_from(sorted(POLICIES)),
    num_drivers=st.integers(min_value=1, max_value=6),
    wait_s=st.floats(min_value=30.0, max_value=300.0),
)
def test_property_engine_invariants(seed, policy_key, num_drivers, wait_s):
    result = run_world(
        POLICIES[policy_key](), seed=seed, num_drivers=num_drivers, wait_s=wait_s
    )

    served = [r for r in result.riders if r.status is RiderStatus.SERVED]
    reneged = [r for r in result.riders if r.status is RiderStatus.RENEGED]

    # 1. Rider accounting: every rider is served or reneged by horizon end
    #    (deadlines are far inside the horizon here).
    assert len(served) + len(reneged) == len(result.riders)
    assert result.metrics.served_orders == len(served)
    assert result.metrics.reneged_orders == len(reneged)

    # 2. Revenue accounting (Eq. 1).
    assert result.total_revenue == pytest.approx(sum(r.revenue for r in served))

    # 3. Temporal ordering of each served rider's lifecycle, including the
    #    validity constraint of Definition 3 (pickup before deadline).
    for rider in served:
        assert rider.request_time_s <= rider.assign_time_s
        assert rider.assign_time_s <= rider.pickup_time_s <= rider.deadline_s + 1e-6
        assert rider.dropoff_time_s == pytest.approx(
            rider.pickup_time_s + rider.trip_seconds
        )

    # 4. Driver exclusivity: trips of one driver never overlap in time.
    by_driver = {}
    for rider in served:
        by_driver.setdefault(rider.driver_id, []).append(rider)
    for trips in by_driver.values():
        trips.sort(key=lambda r: r.assign_time_s)
        for a, b in zip(trips, trips[1:]):
            assert a.dropoff_time_s <= b.assign_time_s + 1e-6

    # 5. Driver busy-time accounting.
    for driver in result.drivers:
        own = by_driver.get(driver.driver_id, [])
        expected_busy = sum(
            (r.pickup_time_s - r.assign_time_s) + r.trip_seconds for r in own
        )
        assert driver.busy_seconds_total == pytest.approx(expected_busy)
        assert driver.served_orders == len(own)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=200))
def test_property_simulation_deterministic(seed):
    """Identical worlds and policies yield identical outcomes."""
    a = run_world(QueueingPolicy("irg"), seed=seed)
    b = run_world(QueueingPolicy("irg"), seed=seed)
    assert a.total_revenue == b.total_revenue
    assert a.served_orders == b.served_orders


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=200))
def test_property_more_patience_never_hurts_near(seed):
    """For the deadline-feasibility-driven NEAR policy, longer patience can
    only grow the candidate sets batch by batch; service count should not
    collapse (weak monotonicity within tolerance)."""
    short = run_world(NearestPolicy(), seed=seed, wait_s=60.0)
    long = run_world(NearestPolicy(), seed=seed, wait_s=240.0)
    assert long.served_orders >= short.served_orders - 2


def test_batch_optimal_beats_or_ties_greedy_revenue_per_batch():
    """On a single batch, OPT-REV's immediate revenue >= any greedy's."""
    from repro.dispatch.base import BatchSnapshot

    riders, drivers = make_world(3, 12, 3, 240.0)
    snapshot = BatchSnapshot.with_arrays(
        predicted_riders=np.full(GRID.num_regions, 3.0),
        predicted_drivers=np.ones(GRID.num_regions),
        time_s=0.0,
        tc_seconds=600.0,
        waiting_riders=[r for r in riders if r.request_time_s < 1.0] or riders[:6],
        available_drivers=drivers,
        grid=GRID,
        cost_model=COST,
        pickup_speed_mps=10.0,
    )
    rider_revenue = {r.rider_id: r.revenue for r in riders}
    opt = BatchOptimalPolicy(objective="revenue").plan_batch(snapshot)
    near = NearestPolicy().plan_batch(snapshot)
    opt_rev = sum(rider_revenue[a.rider_id] for a in opt)
    near_rev = sum(rider_revenue[a.rider_id] for a in near)
    assert opt_rev >= near_rev - 1e-9
