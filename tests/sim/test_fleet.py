"""Unit and randomized tests of the array-backed fleet state."""

import heapq

import numpy as np
import pytest

from repro.geo import GeoPoint
from repro.sim.entities import Driver, DriverStatus
from repro.sim.fleet import DriverView, FleetState

POS = GeoPoint(0.01, 0.01)


def make_driver(i, join=0.0, leave=float("inf"), region=0):
    return Driver(
        i, POS.shifted(dlon=0.001 * i), region,
        join_time_s=join, leave_time_s=leave, available_since_s=join,
    )


class TestDriverView:
    def test_behaves_like_list(self):
        drivers = [make_driver(i) for i in range(5)]
        view = DriverView(drivers, np.array([3, 0, 4]))
        assert len(view) == 3
        assert view[0] is drivers[3]
        assert view[-1] is drivers[4]
        assert [d.driver_id for d in view] == [3, 0, 4]
        assert view[1:] == [drivers[0], drivers[4]]

    def test_empty(self):
        view = DriverView([], np.array([], dtype=np.int64))
        assert len(view) == 0
        assert list(view) == []


class TestFleetStateBasics:
    def test_initial_activation_and_counts(self):
        drivers = [
            make_driver(0, region=0),
            make_driver(1, join=100.0, region=1),
            make_driver(2, region=1),
        ]
        fleet = FleetState(drivers, num_regions=3, tc_seconds=600.0)
        fleet.advance(0.0)
        assert fleet.active_total == 2
        assert list(fleet.avail_count) == [1, 1, 0]
        assert list(fleet.available_indices()) == [0, 2]
        fleet.advance(100.0)
        assert fleet.active_total == 3
        assert list(fleet.avail_count) == [1, 2, 0]

    def test_shift_end_deactivates_idle_driver(self):
        drivers = [make_driver(0, leave=50.0)]
        fleet = FleetState(drivers, num_regions=1, tc_seconds=600.0)
        fleet.advance(0.0)
        assert fleet.active_total == 1
        fleet.advance(50.0)
        assert fleet.active_total == 0

    def test_assign_release_cycle_updates_counters(self):
        drivers = [make_driver(0, region=0)]
        fleet = FleetState(drivers, num_regions=2, tc_seconds=600.0)
        fleet.advance(0.0)
        fleet.assign(0, now=0.0, busy_until=90.0, dest_region=1, lon=0.02, lat=0.02)
        assert fleet.active_total == 0
        # Release is inside the scheduling window: counted as upcoming supply.
        assert list(fleet.rejoin_counts) == [0, 1]
        fleet.advance(90.0)
        fleet.release(0, 90.0)
        assert fleet.active_total == 1
        assert list(fleet.avail_count) == [0, 1]
        assert list(fleet.rejoin_counts) == [0, 0]
        assert fleet.region[0] == 1

    def test_rejoin_beyond_window_enters_later(self):
        drivers = [make_driver(0)]
        fleet = FleetState(drivers, num_regions=1, tc_seconds=100.0)
        fleet.advance(0.0)
        fleet.assign(0, now=0.0, busy_until=250.0, dest_region=0, lon=0.0, lat=0.0)
        assert fleet.rejoin_counts[0] == 0  # 250 > 0 + 100
        fleet.advance(100.0)
        assert fleet.rejoin_counts[0] == 0  # 250 > 200
        fleet.advance(150.0)
        assert fleet.rejoin_counts[0] == 1  # 250 <= 250

    def test_off_shift_rejoin_not_counted(self):
        drivers = [make_driver(0, leave=100.0)]
        fleet = FleetState(drivers, num_regions=1, tc_seconds=600.0)
        fleet.advance(0.0)
        # Delivery completes after shift end: the driver exits, no supply.
        fleet.assign(0, now=0.0, busy_until=150.0, dest_region=0, lon=0.0, lat=0.0)
        assert fleet.rejoin_counts[0] == 0
        fleet.advance(150.0)
        fleet.release(0, 150.0)
        assert fleet.active_total == 0  # past leave: never reactivates

    def test_zero_lead_assignment_not_counted_as_upcoming_supply(self):
        # The module docstring defines the window as ``now < b <= now + tc``:
        # an assignment releasing at (or before) `now` was never inside it.
        drivers = [make_driver(0)]
        fleet = FleetState(drivers, num_regions=2, tc_seconds=600.0)
        fleet.advance(100.0)
        fleet.assign(0, now=100.0, busy_until=100.0, dest_region=1, lon=0.0, lat=0.0)
        assert list(fleet.rejoin_counts) == [0, 0]
        # The release must stay balanced (no double decrement).
        fleet.advance(110.0)
        fleet.release(0, 110.0)
        assert list(fleet.rejoin_counts) == [0, 0]
        assert fleet.active_total == 1

    def test_release_before_now_not_counted(self):
        drivers = [make_driver(0)]
        fleet = FleetState(drivers, num_regions=1, tc_seconds=600.0)
        fleet.advance(50.0)
        fleet.assign(0, now=50.0, busy_until=20.0, dest_region=0, lon=0.0, lat=0.0)
        assert fleet.rejoin_counts[0] == 0

    def test_release_exactly_at_window_end_is_counted(self):
        drivers = [make_driver(0)]
        fleet = FleetState(drivers, num_regions=1, tc_seconds=600.0)
        fleet.advance(0.0)
        fleet.assign(0, now=0.0, busy_until=600.0, dest_region=0, lon=0.0, lat=0.0)
        assert fleet.rejoin_counts[0] == 1  # b == now + tc: inside (closed end)

    def test_release_exactly_at_shift_end_not_counted(self):
        drivers = [make_driver(0, leave=300.0)]
        fleet = FleetState(drivers, num_regions=1, tc_seconds=600.0)
        fleet.advance(0.0)
        # on_shift requires t < leave: rejoining exactly at `leave` is off
        # shift, so the driver is not upcoming supply.
        fleet.assign(0, now=0.0, busy_until=300.0, dest_region=0, lon=0.0, lat=0.0)
        assert fleet.rejoin_counts[0] == 0

    def test_initially_busy_driver_is_inert(self):
        busy = make_driver(0)
        busy.status = DriverStatus.BUSY
        busy.busy_until_s = 50.0
        busy.destination_region = 0
        fleet = FleetState([busy], num_regions=1, tc_seconds=600.0)
        fleet.advance(0.0)
        # Matches the reference engine: no release event exists for drivers
        # that start busy, so they contribute neither supply nor rejoins.
        assert fleet.active_total == 0
        assert fleet.rejoin_counts[0] == 0

    def test_invalid_tc_rejected(self):
        with pytest.raises(ValueError):
            FleetState([], num_regions=1, tc_seconds=0.0)


class TestIncrementalBuckets:
    def test_csr_matches_argsort_reference(self):
        drivers = [make_driver(i, region=i % 3) for i in range(7)]
        fleet = FleetState(drivers, num_regions=3, tc_seconds=600.0)
        fleet.advance(0.0)
        order, indptr = fleet.available_csr()
        # region 0: positions 0,3,6 — region 1: 1,4 — region 2: 2,5
        assert order.tolist() == [0, 3, 6, 1, 4, 2, 5]
        assert indptr.tolist() == [0, 3, 5, 7]

    def test_deltas_accumulate_across_unflushed_ticks(self):
        """Many events between snapshots fold into one correct compaction,
        including activate→deactivate cancellations."""
        rng = np.random.default_rng(3)
        drivers = [make_driver(i, region=int(rng.integers(4))) for i in range(10)]
        fleet = FleetState(drivers, num_regions=4, tc_seconds=600.0)
        fleet.advance(0.0)
        fleet.available_csr()  # materialise the initial buckets
        # A flurry of events with no snapshot in between: two assignments,
        # one of which releases into a new region and is re-assigned again.
        fleet.assign(2, now=0.0, busy_until=50.0, dest_region=3, lon=0.0, lat=0.0)
        fleet.assign(5, now=0.0, busy_until=40.0, dest_region=0, lon=0.0, lat=0.0)
        fleet.advance(50.0)
        fleet.release(5, 50.0)
        fleet.release(2, 50.0)
        fleet.assign(2, now=50.0, busy_until=80.0, dest_region=1, lon=0.0, lat=0.0)
        order, indptr = fleet.available_csr()
        pos = np.flatnonzero(fleet.active)
        expected = pos[np.argsort(fleet.region[pos], kind="stable")]
        assert np.array_equal(order, expected)
        assert indptr.tolist() == [0, *np.cumsum(fleet.avail_count).tolist()]


class TestFleetStateRandomized:
    def test_counters_match_brute_force(self):
        """Drive random event sequences; counters must equal recomputation."""
        rng = np.random.default_rng(7)
        tc = 120.0
        num_regions = 4
        for trial in range(20):
            n = int(rng.integers(1, 12))
            drivers = []
            for i in range(n):
                join = float(rng.uniform(0, 200)) if rng.random() < 0.5 else 0.0
                leave = (
                    join + float(rng.uniform(100, 800))
                    if rng.random() < 0.5
                    else float("inf")
                )
                drivers.append(
                    make_driver(i, join=join, leave=leave,
                                region=int(rng.integers(num_regions)))
                )
            fleet = FleetState(drivers, num_regions, tc)
            release_heap = []
            busy = {}  # pos -> (busy_until, dest)
            for tick in range(60):
                now = tick * 10.0
                fleet.advance(now)
                while release_heap and release_heap[0][0] <= now:
                    _, pos = heapq.heappop(release_heap)
                    drivers[pos].release(now)
                    fleet.release(pos, now)
                    busy.pop(pos)
                for pos in fleet.available_indices().tolist():
                    if rng.random() < 0.3:
                        until = now + float(rng.uniform(5, 400))
                        dest = int(rng.integers(num_regions))
                        centre = POS.shifted(dlon=0.001 * dest)
                        drivers[pos].status = DriverStatus.BUSY
                        drivers[pos].busy_until_s = until
                        drivers[pos].destination_region = dest
                        drivers[pos].position = centre
                        fleet.assign(pos, now, until, dest, centre.lon, centre.lat)
                        heapq.heappush(release_heap, (until, pos))
                        busy[pos] = (until, dest)

                fleet.check_consistency(drivers, now)
                expected = np.zeros(num_regions, dtype=np.int64)
                for pos, (until, dest) in busy.items():
                    if now < until <= now + tc and until < drivers[pos].leave_time_s:
                        expected[dest] += 1
                assert np.array_equal(fleet.rejoin_counts, expected), (
                    trial, tick
                )


class TestBulkActivation:
    """The first-advance bulk shift-start path must match the per-event
    loop exactly (same actives, counters, buckets, deactivation behaviour).
    """

    def make_fleet(self, n=3000, num_regions=5, seed=7):
        rng = np.random.default_rng(seed)
        drivers = []
        for i in range(n):
            join = float(rng.choice([0.0, 0.0, 30.0, 500.0]))
            leave = float("inf") if rng.random() < 0.5 else join + float(
                rng.uniform(50.0, 1000.0)
            )
            drivers.append(
                make_driver(
                    i, join=join, leave=leave, region=int(rng.integers(num_regions))
                )
            )
        return drivers, FleetState(drivers, num_regions=num_regions, tc_seconds=600.0)

    def test_matches_per_event_path(self):
        drivers, bulk = self.make_fleet()
        _, scalar = self.make_fleet()
        # Force the per-event loop: feed the initial joins through the
        # ordinary activation heap instead of the bulk path.
        scalar._activations = sorted(
            zip(
                scalar._initial_join_times.tolist(),
                scalar._initial_join_pos.tolist(),
            )
        )
        scalar._initial_join_times = scalar._initial_join_pos = None
        scalar._primed = True

        for now in (10.0, 30.0, 120.0, 500.0, 2000.0):
            grew_bulk = bulk.advance(now)
            grew_scalar = scalar.advance(now)
            assert grew_bulk == grew_scalar, now
            assert np.array_equal(bulk.active, scalar.active), now
            assert np.array_equal(bulk.avail_count, scalar.avail_count), now
            assert bulk.active_total == scalar.active_total, now
            b_buckets, s_buckets = bulk.region_buckets(), scalar.region_buckets()
            for k in range(bulk.num_regions):
                assert np.array_equal(b_buckets[k], s_buckets[k]), (now, k)
            bulk.check_consistency(drivers, now)

    def test_small_fleet_bulk_path(self):
        drivers = [make_driver(i) for i in range(3)]
        fleet = FleetState(drivers, num_regions=1, tc_seconds=600.0)
        fleet.advance(0.0)
        assert fleet._primed
        assert fleet.active_total == 3
        fleet.check_consistency(drivers, 0.0)
