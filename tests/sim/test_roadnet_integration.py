"""Simulation runs end to end on an explicit road-network cost model.

The big sweeps use the O(1) straight-line cost; these tests pin that the
engine, the candidate generation and the queueing policies are agnostic to
the cost model, exactly as the paper's §2 road-network formulation implies.
"""

import numpy as np
import pytest

from repro.dispatch import NearestPolicy, QueueingPolicy
from repro.geo import BoundingBox, GridPartition
from repro.roadnet import RoadNetworkCost, StraightLineCost, build_grid_network
from repro.sim.engine import SimConfig, Simulation
from repro.sim.entities import Driver, Rider, RiderStatus

BOX = BoundingBox(-74.00, 40.70, -73.97, 40.73)  # ~2.5 x 3.3 km
GRID = GridPartition(BOX, rows=2, cols=2)
SPEED = 10.0


@pytest.fixture(scope="module")
def network():
    return build_grid_network(
        BOX,
        rows=10,
        cols=10,
        speed_mps=SPEED,
        speed_jitter=0.2,
        rng=np.random.default_rng(5),
    )


@pytest.fixture(scope="module")
def road_cost(network):
    return RoadNetworkCost(network, access_speed_mps=SPEED)


def _workload(cost_model, num_riders=60, num_drivers=6, seed=1):
    rng = np.random.default_rng(seed)
    riders = []
    for i in range(num_riders):
        t = float(rng.uniform(0.0, 1500.0))
        pickup = BOX.sample(rng)
        dropoff = BOX.sample(rng)
        trip = cost_model.travel_seconds(pickup, dropoff)
        riders.append(
            Rider(
                rider_id=i, request_time_s=t, pickup=pickup, dropoff=dropoff,
                deadline_s=t + 240.0, trip_seconds=trip, revenue=trip,
                origin_region=GRID.region_of(pickup),
                destination_region=GRID.region_of(dropoff),
            )
        )
    drivers = []
    for j in range(num_drivers):
        position = BOX.sample(rng)
        drivers.append(Driver(j, position, GRID.region_of(position)))
    return riders, drivers


def _run(cost_model, policy, seed=1):
    riders, drivers = _workload(cost_model, seed=seed)
    sim = Simulation(
        riders, drivers, GRID, cost_model, policy,
        SimConfig(batch_interval_s=10.0, tc_seconds=600.0, horizon_s=3600.0),
    )
    return sim.run()


class TestRoadNetworkCostModel:
    def test_costs_positive_and_roughly_metric(self, road_cost):
        rng = np.random.default_rng(9)
        straight = StraightLineCost(speed_mps=SPEED, metric="euclidean")
        for _ in range(25):
            a, b = BOX.sample(rng), BOX.sample(rng)
            cost = road_cost.travel_seconds(a, b)
            assert cost >= 0.0
            base = straight.travel_seconds(a, b)
            if base > 30.0:
                # Network paths stay within a sane detour envelope.
                assert 0.7 * base <= cost <= 4.0 * base

    def test_same_point_is_cheap(self, road_cost):
        p = BOX.sample(np.random.default_rng(2))
        # Snapping both endpoints to the same vertex leaves only the
        # (tiny) access legs.
        assert road_cost.travel_seconds(p, p) < 60.0

    def test_cache_returns_identical_results(self, road_cost):
        rng = np.random.default_rng(4)
        a, b = BOX.sample(rng), BOX.sample(rng)
        assert road_cost.travel_seconds(a, b) == road_cost.travel_seconds(a, b)


class TestSimulationOnRoadNetwork:
    @pytest.mark.parametrize("algo", ["irg", "ls", "short"])
    def test_queueing_policies_complete(self, road_cost, algo):
        result = _run(road_cost, QueueingPolicy(algo))
        served = sum(1 for r in result.riders if r.status is RiderStatus.SERVED)
        assert served == result.served_orders
        assert served + result.metrics.reneged_orders == len(result.riders)
        assert result.served_orders > 0

    def test_nearest_policy_completes(self, road_cost):
        result = _run(road_cost, NearestPolicy())
        assert result.served_orders > 0

    def test_no_deadline_violations(self, road_cost):
        """Every served rider was picked up before their deadline under the
        network cost (the validity check of Definition 3)."""
        result = _run(road_cost, QueueingPolicy("irg"))
        for rider in result.riders:
            if rider.status is RiderStatus.SERVED:
                assert rider.pickup_time_s <= rider.deadline_s + 1e-6

    def test_revenue_equals_sum_of_served_trip_costs(self, road_cost):
        result = _run(road_cost, QueueingPolicy("irg"))
        expected = sum(
            r.revenue for r in result.riders if r.status is RiderStatus.SERVED
        )
        assert result.total_revenue == pytest.approx(expected)

    def test_straight_line_and_network_agree_on_conservation(self, road_cost):
        """Same invariants hold under either cost model (model-agnostic
        engine), even though the outcomes differ."""
        for cost_model in (StraightLineCost(speed_mps=SPEED), road_cost):
            result = _run(cost_model, QueueingPolicy("irg"), seed=8)
            total = result.served_orders + result.metrics.reneged_orders
            assert total == len(result.riders)
