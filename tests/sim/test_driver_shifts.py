"""Driver shift lifetimes (the ``T_j`` of §2.4) in the batch engine."""

import math

import numpy as np
import pytest

from repro.data.schema import TripRecord
from repro.data.workload import shift_drivers_from_trips
from repro.dispatch import NearestPolicy
from repro.geo import BoundingBox, GeoPoint, GridPartition
from repro.roadnet.travel_time import StraightLineCost
from repro.sim.engine import SimConfig, Simulation
from repro.sim.entities import Driver, Rider, RiderStatus

BOX = BoundingBox(0.0, 0.0, 0.02, 0.02)
GRID = GridPartition(BOX, rows=1, cols=1)
COST = StraightLineCost(speed_mps=10.0, metric="euclidean")
CENTRE = GeoPoint(0.01, 0.01)


def _rider(rider_id, t, wait=600.0):
    pickup = CENTRE
    dropoff = GeoPoint(0.015, 0.01)
    trip = COST.travel_seconds(pickup, dropoff)
    return Rider(
        rider_id=rider_id, request_time_s=t, pickup=pickup, dropoff=dropoff,
        deadline_s=t + wait, trip_seconds=trip, revenue=trip,
        origin_region=0, destination_region=0,
    )


def _run(riders, drivers, horizon_s=7200.0):
    sim = Simulation(
        riders, drivers, GRID, COST, NearestPolicy(),
        SimConfig(batch_interval_s=10.0, tc_seconds=600.0, horizon_s=horizon_s),
    )
    return sim.run()


class TestDriverEntityShifts:
    def test_defaults_are_open_ended(self):
        d = Driver(0, CENTRE, 0)
        assert d.join_time_s == 0.0
        assert math.isinf(d.leave_time_s)
        assert math.isinf(d.lifetime_s)
        assert d.on_shift(0.0) and d.on_shift(1e9)

    def test_on_shift_window_is_half_open(self):
        d = Driver(0, CENTRE, 0, join_time_s=100.0, leave_time_s=200.0)
        assert not d.on_shift(99.9)
        assert d.on_shift(100.0)
        assert d.on_shift(199.9)
        assert not d.on_shift(200.0)

    def test_lifetime(self):
        d = Driver(0, CENTRE, 0, join_time_s=3600.0, leave_time_s=3600.0 * 9)
        assert d.lifetime_s == pytest.approx(8 * 3600.0)

    def test_inverted_shift_rejected(self):
        with pytest.raises(ValueError):
            Driver(0, CENTRE, 0, join_time_s=200.0, leave_time_s=100.0)


class TestEngineHonoursShifts:
    def test_no_assignment_before_join(self):
        """A lone rider at t=0 with a 10-minute deadline cannot be served
        by a driver whose shift starts at t=1h."""
        riders = [_rider(0, 0.0, wait=600.0)]
        drivers = [
            Driver(0, CENTRE, 0, join_time_s=3600.0, available_since_s=3600.0)
        ]
        result = _run(riders, drivers)
        assert result.served_orders == 0
        assert result.riders[0].status is RiderStatus.RENEGED

    def test_assignment_after_join(self):
        """The same world, but the rider arrives inside the shift."""
        riders = [_rider(0, 3700.0, wait=600.0)]
        drivers = [
            Driver(0, CENTRE, 0, join_time_s=3600.0, available_since_s=3600.0)
        ]
        result = _run(riders, drivers)
        assert result.served_orders == 1

    def test_no_assignment_after_leave(self):
        riders = [_rider(0, 2000.0, wait=600.0)]
        drivers = [Driver(0, CENTRE, 0, leave_time_s=1800.0)]
        result = _run(riders, drivers)
        assert result.served_orders == 0

    def test_in_flight_delivery_completes_past_leave(self):
        """A driver assigned just before shift end finishes the ride (and
        its revenue counts), but takes nothing afterwards."""
        riders = [_rider(0, 0.0), _rider(1, 400.0, wait=2000.0)]
        drivers = [Driver(0, CENTRE, 0, leave_time_s=60.0)]
        result = _run(riders, drivers)
        assert result.riders[0].status is RiderStatus.SERVED
        assert result.riders[1].status is RiderStatus.RENEGED
        assert result.total_revenue == pytest.approx(result.riders[0].revenue)

    def test_shift_change_hands_over_demand(self):
        """Back-to-back shifts serve a stream spanning both; a single
        equal-length shift misses the second half."""
        riders = [_rider(i, 300.0 * i, wait=500.0) for i in range(20)]
        relay = [
            Driver(0, CENTRE, 0, join_time_s=0.0, leave_time_s=3000.0),
            Driver(
                1, CENTRE, 0,
                join_time_s=3000.0, leave_time_s=6000.0,
                available_since_s=3000.0,
            ),
        ]
        solo = [Driver(0, CENTRE, 0, join_time_s=0.0, leave_time_s=3000.0)]
        served_relay = _run(riders, relay).served_orders
        served_solo = _run([
            _rider(i, 300.0 * i, wait=500.0) for i in range(20)
        ], solo).served_orders
        assert served_relay > served_solo

    def test_conservation_with_shifts(self):
        rng = np.random.default_rng(3)
        riders = [
            _rider(i, float(rng.uniform(0, 5000.0)), wait=300.0)
            for i in range(40)
        ]
        drivers = [
            Driver(
                j, CENTRE, 0,
                join_time_s=float(rng.uniform(0, 2000.0)),
                leave_time_s=float(rng.uniform(3000.0, 7000.0)),
            )
            for j in range(4)
        ]
        result = _run(riders, drivers)
        assert result.served_orders + result.metrics.reneged_orders == 40


class TestShiftWorkloadGenerator:
    def _trips(self, n=200, seed=0):
        rng = np.random.default_rng(seed)
        trips = []
        for _ in range(n):
            t = float(rng.uniform(0, 86_400.0))
            trips.append(
                TripRecord(
                    pickup_time_s=t,
                    pickup=BOX.sample(rng),
                    dropoff=BOX.sample(rng),
                )
            )
        return trips

    def test_all_shifts_have_requested_length(self):
        drivers = shift_drivers_from_trips(
            self._trips(), GRID, 30, np.random.default_rng(1), shift_hours=8.0
        )
        assert len(drivers) == 30
        for d in drivers:
            assert d.lifetime_s == pytest.approx(8 * 3600.0)
            assert 0.0 <= d.join_time_s <= 86_400.0 - 8 * 3600.0
            assert d.region == 0
            assert d.available_since_s == d.join_time_s

    def test_deterministic_per_seed(self):
        trips = self._trips()
        a = shift_drivers_from_trips(trips, GRID, 10, np.random.default_rng(7))
        b = shift_drivers_from_trips(trips, GRID, 10, np.random.default_rng(7))
        assert [(d.join_time_s, d.position) for d in a] == [
            (d.join_time_s, d.position) for d in b
        ]

    def test_supply_tracks_demand(self):
        """Shift starts cluster near trip times (within the 1-hour lead)."""
        rng = np.random.default_rng(11)
        trips = []
        for _ in range(300):  # all demand between 8h and 10h
            t = float(rng.uniform(8 * 3600.0, 10 * 3600.0))
            trips.append(
                TripRecord(
                    pickup_time_s=t, pickup=BOX.sample(rng), dropoff=BOX.sample(rng)
                )
            )
        drivers = shift_drivers_from_trips(
            trips, GRID, 40, np.random.default_rng(2), shift_hours=8.0
        )
        for d in drivers:
            assert 7 * 3600.0 <= d.join_time_s <= 10 * 3600.0

    def test_rejects_bad_arguments(self):
        trips = self._trips(5)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            shift_drivers_from_trips(trips, GRID, 0, rng)
        with pytest.raises(ValueError):
            shift_drivers_from_trips(trips, GRID, 5, rng, shift_hours=0.0)
        with pytest.raises(ValueError):
            shift_drivers_from_trips([], GRID, 5, rng)
