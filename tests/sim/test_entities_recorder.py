"""Tests of riders, drivers, and the idle-time recorder."""

import math

import pytest

from repro.geo import GeoPoint
from repro.sim.entities import Driver, DriverStatus, Rider, RiderStatus
from repro.sim.recorder import IdleTimeRecorder


def make_rider(rider_id=0, request=0.0, deadline=130.0, trip=300.0):
    return Rider(
        rider_id=rider_id,
        request_time_s=request,
        pickup=GeoPoint(-73.98, 40.75),
        dropoff=GeoPoint(-73.95, 40.78),
        deadline_s=deadline,
        trip_seconds=trip,
        revenue=trip,
        origin_region=1,
        destination_region=2,
    )


class TestRider:
    def test_initially_waiting(self):
        assert make_rider().waiting

    def test_deadline_before_request_rejected(self):
        with pytest.raises(ValueError):
            make_rider(request=100.0, deadline=50.0)

    def test_negative_trip_rejected(self):
        with pytest.raises(ValueError):
            make_rider(trip=-1.0)


class TestDriver:
    def _driver(self):
        return Driver(driver_id=0, position=GeoPoint(-73.99, 40.74), region=1)

    def test_assign_release_cycle(self):
        d = self._driver()
        r = make_rider()
        d.assign(r, now_s=10.0, pickup_eta_s=20.0,
                 dropoff_position=r.dropoff, destination_region=2)
        assert d.status is DriverStatus.BUSY
        assert d.busy_until_s == pytest.approx(10.0 + 20.0 + 300.0)
        assert d.served_orders == 1
        d.release(now_s=330.0)
        assert d.available
        assert d.region == 2
        assert d.available_since_s == 330.0

    def test_double_assign_rejected(self):
        d = self._driver()
        r = make_rider()
        d.assign(r, 0.0, 5.0, r.dropoff, 2)
        with pytest.raises(ValueError):
            d.assign(r, 1.0, 5.0, r.dropoff, 2)

    def test_release_when_available_rejected(self):
        with pytest.raises(ValueError):
            self._driver().release(0.0)

    def test_busy_seconds_accumulate(self):
        d = self._driver()
        r = make_rider()
        d.assign(r, 0.0, 10.0, r.dropoff, 2)
        d.release(310.0)
        d.assign(make_rider(rider_id=1), 400.0, 5.0, r.dropoff, 2)
        assert d.busy_seconds_total == pytest.approx(310.0 + 305.0)


class TestIdleTimeRecorder:
    def test_first_assignment_emits_nothing(self):
        rec = IdleTimeRecorder()
        rec.on_assignment(0, now_s=10.0, released_at_s=0.0,
                          destination_region=3, predicted_idle_s=50.0)
        assert rec.samples == []

    def test_second_assignment_emits_sample(self):
        rec = IdleTimeRecorder()
        rec.on_assignment(0, 10.0, 0.0, 3, predicted_idle_s=50.0)
        # Driver released at t=400 in region 3, reassigned at t=460.
        rec.on_assignment(0, 460.0, 400.0, 5, predicted_idle_s=70.0)
        assert len(rec.samples) == 1
        s = rec.samples[0]
        assert s.region == 3
        assert s.predicted_idle_s == 50.0
        assert s.realized_idle_s == pytest.approx(60.0)

    def test_nan_prediction_never_emits(self):
        rec = IdleTimeRecorder()
        rec.on_assignment(0, 10.0, 0.0, 3, predicted_idle_s=math.nan)
        rec.on_assignment(0, 460.0, 400.0, 5, predicted_idle_s=math.nan)
        assert rec.samples == []

    def test_censored_final_interval_dropped(self):
        rec = IdleTimeRecorder()
        rec.on_assignment(0, 10.0, 0.0, 3, predicted_idle_s=50.0)
        assert rec.samples == []  # never reassigned

    def test_per_region_means(self):
        rec = IdleTimeRecorder()
        rec.on_assignment(0, 10.0, 0.0, 3, 50.0)
        rec.on_assignment(0, 460.0, 400.0, 3, 80.0)
        rec.on_assignment(0, 900.0, 800.0, 4, 10.0)
        means = rec.per_region_means()
        assert means[3][0] == pytest.approx((50.0 + 80.0) / 2)
        assert means[3][1] == pytest.approx((60.0 + 100.0) / 2)
