"""Hypothesis-driven invariants of the incremental fleet structures.

Random event sequences — shift starts/ends (via ``advance``), assignments,
repositions, and releases — are applied to a :class:`FleetState`, and the
incrementally-maintained structures (per-region buckets / CSR order,
``avail_count``, ``active_total``, ``rejoin_counts``) are compared against
a from-scratch rebuild from the plain per-driver arrays.  Some ticks check
after *every* event (exercising single-delta flushes), others only at the
tick boundary (exercising batched deltas, including activate/deactivate
pairs that must cancel to a zero delta).
"""

import heapq

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import GeoPoint
from repro.sim.entities import Driver
from repro.sim.fleet import FleetState

POS = GeoPoint(0.01, 0.01)
NUM_REGIONS = 4
TC = 50.0


def assert_matches_rebuild(
    fleet: FleetState, now: float, zero_lead: set[int]
) -> None:
    """Incremental counters/buckets must equal a rebuild from raw arrays.

    ``zero_lead`` holds drivers whose assignment completed at or before its
    own commit time (``busy_until <= now`` at :meth:`FleetState.assign`) —
    the one case not reconstructible from the arrays alone: such a driver
    was never inside any scheduling window, so it must never be counted.
    """
    active = fleet.active
    assert fleet.active_total == int(active.sum())

    expected_counts = np.bincount(
        fleet.region[active], minlength=fleet.num_regions
    )
    assert np.array_equal(fleet.avail_count, expected_counts)

    buckets = fleet.region_buckets()
    assert len(buckets) == fleet.num_regions
    for k in range(fleet.num_regions):
        expected = np.flatnonzero(active & (fleet.region == k))
        assert np.array_equal(buckets[k], expected), (k, now)

    order_fleet, indptr = fleet.available_csr()
    pos = np.flatnonzero(active)
    expected_order = pos[np.argsort(fleet.region[pos], kind="stable")]
    assert np.array_equal(order_fleet, expected_order)
    assert np.array_equal(indptr[1:], np.cumsum(expected_counts))

    # Rejoin window |D^hat_k|: busy drivers whose window has opened
    # (``b <= now + t_c``) and that rejoin before their shift ends.  A
    # driver with ``b <= now`` still pending release stays counted until
    # the release drains — matching the engine's advance-then-release tick
    # order.  (All drivers here start available, so the initially-busy
    # carve-out never applies.)
    expected_rejoins = np.zeros(fleet.num_regions, dtype=np.int64)
    for i in range(len(active)):
        b = fleet.busy_until[i]
        if (
            not fleet.is_available[i]
            and b <= now + fleet.tc_seconds
            and b < fleet.leave[i]
            and i not in zero_lead
        ):
            expected_rejoins[fleet.dest_region[i]] += 1
    assert np.array_equal(fleet.rejoin_counts, expected_rejoins), now


@settings(max_examples=60, deadline=None)
@given(
    specs=st.lists(
        st.tuples(
            st.integers(0, NUM_REGIONS - 1),               # home region
            st.integers(0, 20),                            # join time
            st.one_of(st.none(), st.integers(1, 90)),      # shift length
        ),
        min_size=1,
        max_size=8,
    ),
    data=st.data(),
)
def test_incremental_structures_match_rebuild(specs, data):
    drivers = [
        Driver(
            i,
            POS.shifted(dlon=0.001 * i),
            region,
            join_time_s=float(join),
            leave_time_s=float("inf") if length is None else float(join + length),
            available_since_s=float(join),
        )
        for i, (region, join, length) in enumerate(specs)
    ]
    fleet = FleetState(drivers, num_regions=NUM_REGIONS, tc_seconds=TC)

    releases: list[tuple[float, int]] = []
    zero_lead: set[int] = set()
    now = 0.0
    for _ in range(data.draw(st.integers(3, 10), label="ticks")):
        now += float(data.draw(st.integers(1, 15), label="dt"))
        per_event = data.draw(st.booleans(), label="check_each_event")

        # Engine tick order: shift/window events first, then releases.
        fleet.advance(now)
        if per_event:
            assert_matches_rebuild(fleet, now, zero_lead)
        while releases and releases[0][0] <= now:
            _, i = heapq.heappop(releases)
            fleet.release(i, now)
            zero_lead.discard(i)
            if per_event:
                assert_matches_rebuild(fleet, now, zero_lead)

        # Assign or reposition a random prefix of the active drivers.
        active = np.flatnonzero(fleet.active).tolist()
        n_acts = data.draw(st.integers(0, len(active)), label="n_acts")
        for i in active[:n_acts]:
            lead = data.draw(st.integers(0, 80), label="lead")
            dest = data.draw(st.integers(0, NUM_REGIONS - 1), label="dest")
            commit = (
                fleet.reposition
                if data.draw(st.booleans(), label="is_reposition")
                else fleet.assign
            )
            commit(
                i,
                now=now,
                busy_until=now + lead,
                dest_region=dest,
                lon=0.02,
                lat=0.02,
            )
            heapq.heappush(releases, (now + lead, i))
            if lead == 0:
                zero_lead.add(i)
            if per_event:
                assert_matches_rebuild(fleet, now, zero_lead)

        assert_matches_rebuild(fleet, now, zero_lead)
