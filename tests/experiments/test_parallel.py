"""Tests of the sharded parallel runner and the cross-process disk cache."""

import pytest

from repro.experiments import clear_caches, profile_config, sweep_parameter
from repro.experiments.parallel import (
    RunRequest,
    _disk_key,
    _evict_lru,
    _load_disk,
    _store_disk,
    clear_disk_cache,
    disk_cache_max_bytes,
    disk_cache_stats,
    resolve_jobs,
    run_cache_dir,
    run_policies_parallel,
)
from repro.experiments.runner import RunSummary, run_cache_key
from repro.sim.metrics import IdleSample

POLICIES = ("RAND", "NEAR", "IRG-R")


@pytest.fixture(autouse=True)
def isolated_caches(tmp_path, monkeypatch):
    """Point the disk cache at a scratch dir and start memory-cold."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "runs"))
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
    clear_caches()
    yield
    clear_caches()


@pytest.fixture(scope="module")
def quick():
    """A tiny config shrunk further: determinism runs 12+ simulations."""
    return profile_config("tiny").replace(horizon_s=3 * 3600.0)


class TestResolveJobs:
    def test_explicit_wins(self):
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_default_serial_and_floor(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1


class TestDeterminism:
    def test_parallel_sweep_economics_bit_identical_to_serial(self, quick):
        """A --jobs 4 sweep recomputes the serial sweep's economics exactly.

        Revenue/served/batch-count are deterministic (seeded workloads,
        seeded policies); ``batch_seconds`` is measured wall-clock and can
        only be bit-identical when both sweeps resolve to the *same* cached
        runs — covered by the disk-cache test below.
        """
        serial = sweep_parameter(
            quick, "num_drivers", [16, 24], policies=POLICIES,
            jobs=1, use_disk_cache=False,
        )
        clear_caches()
        parallel = sweep_parameter(
            quick, "num_drivers", [16, 24], policies=POLICIES,
            jobs=4, use_disk_cache=False,
        )
        assert parallel.values == serial.values
        for policy in POLICIES:
            assert parallel.revenue[policy] == serial.revenue[policy]
            assert parallel.served[policy] == serial.served[policy]
            assert len(parallel.batch_seconds[policy]) == len(
                serial.batch_seconds[policy]
            )

    def test_resweep_through_disk_cache_is_fully_bit_identical(self, quick):
        """Serial re-sweep resolves to the parallel sweep's cached runs."""
        parallel = sweep_parameter(
            quick, "num_drivers", [16, 24], policies=POLICIES,
            jobs=4, use_disk_cache=True,
        )
        clear_caches()  # next invocation stand-in: memory cold, disk warm
        serial = sweep_parameter(
            quick, "num_drivers", [16, 24], policies=POLICIES,
            jobs=1, use_disk_cache=True,
        )
        assert serial.values == parallel.values
        assert serial.revenue == parallel.revenue
        assert serial.batch_seconds == parallel.batch_seconds
        assert serial.served == parallel.served

    def test_parallel_multi_city_matches_serial(self, quick):
        config = quick.replace(city="polycentric")
        serial = run_policies_parallel(
            [RunRequest(config, "NEAR")], jobs=1, use_disk_cache=False
        )[0]
        clear_caches()
        parallel = run_policies_parallel(
            [RunRequest(config, "NEAR"), RunRequest(config, "RAND")],
            jobs=2,
            use_disk_cache=False,
        )[0]
        assert parallel.total_revenue == serial.total_revenue
        assert parallel.served_orders == serial.served_orders
        assert parallel.reneged_orders == serial.reneged_orders
        assert parallel.idle_samples == serial.idle_samples


class TestDeduplication:
    def test_oracle_predictor_variants_simulate_once(self, quick, monkeypatch):
        import repro.experiments.parallel as parallel_mod

        calls = []
        real = parallel_mod._execute_request

        def counting(request):
            calls.append(request)
            return real(request)

        monkeypatch.setattr(parallel_mod, "_execute_request", counting)
        summaries = run_policies_parallel(
            [
                RunRequest(quick, "NEAR", "ha"),
                RunRequest(quick, "NEAR", "deepst"),
                RunRequest(quick, "NEAR", "gbrt"),
            ],
            jobs=1,
            use_disk_cache=False,
        )
        assert len(calls) == 1  # oracle demand: predictor is irrelevant
        assert summaries[0] is summaries[1] is summaries[2]


class TestDiskCache:
    def test_summary_roundtrip(self, quick):
        request = RunRequest(quick, "IRG-R")
        summary = RunSummary(
            policy="IRG-R",
            total_revenue=123.25,
            served_orders=10,
            total_orders=12,
            reneged_orders=2,
            mean_batch_seconds=0.002,
            max_batch_seconds=0.004,
            idle_samples=(
                IdleSample(
                    driver_id=3,
                    region=1,
                    released_at_s=60.0,
                    predicted_idle_s=30.5,
                    realized_idle_s=28.0,
                ),
            ),
        )
        _store_disk(request, summary)
        assert _load_disk(request) == summary

    def test_missing_and_corrupt_entries_are_misses(self, quick):
        request = RunRequest(quick, "NEAR")
        assert _load_disk(request) is None
        run_cache_dir().mkdir(parents=True, exist_ok=True)
        (run_cache_dir() / f"{_disk_key(request)}.json").write_text("{broken")
        assert _load_disk(request) is None

    def test_second_invocation_loads_instead_of_simulating(
        self, quick, monkeypatch
    ):
        request = RunRequest(quick, "NEAR")
        first = run_policies_parallel([request], jobs=1, use_disk_cache=True)[0]
        clear_caches()  # fresh process stand-in: memory cold, disk warm

        import repro.experiments.runner as runner_mod

        def boom(*args, **kwargs):  # any simulation attempt is a failure
            raise AssertionError("run was simulated instead of disk-loaded")

        monkeypatch.setattr(runner_mod, "_execute", boom)
        again = run_policies_parallel([request], jobs=1, use_disk_cache=True)[0]
        assert again == first

    def test_disk_key_drops_predictor_for_oracle_policies(self, quick):
        assert _disk_key(RunRequest(quick, "NEAR", "ha")) == _disk_key(
            RunRequest(quick, "NEAR", "deepst")
        )
        assert _disk_key(RunRequest(quick, "IRG-P", "ha")) != _disk_key(
            RunRequest(quick, "IRG-P", "deepst")
        )

    def test_disk_key_numeric_type_insensitive(self, quick):
        """Configs equal in memory (16 == 16.0) share one disk entry."""
        as_int = quick.replace(batch_interval_s=30)
        as_float = quick.replace(batch_interval_s=30.0)
        assert as_int == as_float
        assert _disk_key(RunRequest(as_int, "NEAR")) == _disk_key(
            RunRequest(as_float, "NEAR")
        )

    def test_disk_key_varies_with_city(self, quick):
        assert _disk_key(RunRequest(quick, "NEAR")) != _disk_key(
            RunRequest(quick.replace(city="sprawl"), "NEAR")
        )

    def test_disk_key_varies_with_cost_model(self, quick):
        keys = {
            _disk_key(RunRequest(quick.replace(cost_model=name), "NEAR"))
            for name in ("straight_line", "roadnet", "roadnet_tod")
        }
        assert len(keys) == 3

    def test_disk_key_varies_with_congestion_profile(self, quick):
        """Each city carries its own rush-hour profile (and lattice), so a
        tod run's disk key forks per city — the congestion profile
        participates in the key through the scenario name."""
        nyc = quick.replace(cost_model="roadnet_tod")
        sprawl = nyc.replace(city="sprawl")
        assert _disk_key(RunRequest(nyc, "NEAR")) != _disk_key(
            RunRequest(sprawl, "NEAR")
        )

    def test_straight_line_disk_key_matches_pre_cost_model_format(self, quick):
        """Adding the ``cost_model`` field must not orphan existing disk
        entries: the default straight-line key hashes the exact payload the
        pre-cost-model format hashed (config dict without the field)."""
        import dataclasses
        import hashlib
        import json

        from repro.experiments.parallel import _CACHE_VERSION, _canonical
        from repro.experiments.runner import normalized_run_config

        legacy_config = _canonical(
            dataclasses.asdict(normalized_run_config(quick))
        )
        assert legacy_config.pop("cost_model") == "straight_line"
        legacy_payload = {
            "version": _CACHE_VERSION,
            "config": legacy_config,
            "policy": "NEAR",
            "predictor": None,
        }
        blob = json.dumps(legacy_payload, sort_keys=True, default=str)
        assert (
            _disk_key(RunRequest(quick, "NEAR"))
            == hashlib.sha256(blob.encode()).hexdigest()
        )

    def test_landmark_count_shares_entries_under_roadnet_pricing(self, quick):
        """`roadnet_landmarks` stays result-invariant when the run actually
        prices on the road network (batched/ALT/scalar ETAs are proven
        bit-identical), so landmark-only changes share one key while the
        cost model itself still forks."""
        few = quick.replace(cost_model="roadnet", roadnet_landmarks=0)
        many = quick.replace(cost_model="roadnet", roadnet_landmarks=16)
        assert run_cache_key(few, "NEAR") == run_cache_key(many, "NEAR")
        assert _disk_key(RunRequest(few, "NEAR")) == _disk_key(
            RunRequest(many, "NEAR")
        )

    def test_landmark_count_does_not_fork_cache_keys(self, quick):
        """`roadnet_landmarks` is result-invariant (batched/ALT/scalar ETAs
        are bit-identical), so configs differing only there must share one
        cache entry — in memory and on disk — instead of re-simulating."""
        few = quick.replace(roadnet_landmarks=0)
        many = quick.replace(roadnet_landmarks=16)
        assert run_cache_key(few, "NEAR") == run_cache_key(many, "NEAR")
        assert _disk_key(RunRequest(few, "NEAR")) == _disk_key(
            RunRequest(many, "NEAR")
        )
        # End to end: the second request resolves from the first's entry
        # without simulating again.
        first = run_policies_parallel(
            [RunRequest(few, "NEAR")], jobs=1, use_disk_cache=True
        )[0]
        clear_caches()  # drop the in-memory layer; keep the disk entry
        import repro.experiments.runner as runner_mod

        original = runner_mod._execute

        def boom(*args, **kwargs):
            raise AssertionError(
                "landmark-only config change re-simulated instead of "
                "hitting the shared cache entry"
            )

        runner_mod._execute = boom
        try:
            again = run_policies_parallel(
                [RunRequest(many, "NEAR")], jobs=1, use_disk_cache=True
            )[0]
        finally:
            runner_mod._execute = original
        assert again == first

    def test_clear_disk_cache(self, quick):
        run_policies_parallel(
            [RunRequest(quick, "NEAR")], jobs=1, use_disk_cache=True
        )
        assert clear_disk_cache() == 1
        assert clear_disk_cache() == 0


def _fake_entry(name: str, size: int, mtime: float) -> None:
    import os

    path = run_cache_dir() / f"{name}.json"
    path.write_text("x" * size)
    os.utime(path, (mtime, mtime))


class TestDiskCacheEviction:
    def test_cap_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_MAX_MB", raising=False)
        assert disk_cache_max_bytes() == 256 * 1024 * 1024
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "1.5")
        assert disk_cache_max_bytes() == int(1.5 * 1024 * 1024)
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "0")
        assert disk_cache_max_bytes() == 0  # disabled
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "bogus")
        assert disk_cache_max_bytes() == 256 * 1024 * 1024

    def test_evicts_oldest_first_until_under_cap(self):
        run_cache_dir().mkdir(parents=True, exist_ok=True)
        _fake_entry("old", 400, mtime=1_000.0)
        _fake_entry("mid", 400, mtime=2_000.0)
        _fake_entry("new", 400, mtime=3_000.0)
        assert _evict_lru(run_cache_dir(), max_bytes=900) == 1
        names = {p.stem for p in run_cache_dir().glob("*.json")}
        assert names == {"mid", "new"}

    def test_no_eviction_under_cap(self):
        run_cache_dir().mkdir(parents=True, exist_ok=True)
        _fake_entry("only", 100, mtime=1_000.0)
        assert _evict_lru(run_cache_dir(), max_bytes=10_000) == 0
        assert disk_cache_stats()["entries"] == 1

    def test_store_trims_cache_to_cap(self, quick, monkeypatch):
        """A store over the cap evicts the least-recently-used entries."""
        run_cache_dir().mkdir(parents=True, exist_ok=True)
        _fake_entry("stale-a", 2_000, mtime=1_000.0)
        _fake_entry("stale-b", 2_000, mtime=2_000.0)
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", str(3_000 / (1024 * 1024)))
        request = RunRequest(quick, "NEAR")
        summary = run_policies_parallel(
            [request], jobs=1, use_disk_cache=True
        )[0]
        # The fresh entry survives; the oldest fakes were evicted to fit.
        assert _load_disk(request) == summary
        assert not (run_cache_dir() / "stale-a.json").exists()

    def test_load_refreshes_recency(self, quick):
        """A hit touches its entry so re-swept configs outlive one-offs."""
        import os

        run_policies_parallel(
            [RunRequest(quick, "NEAR")], jobs=1, use_disk_cache=True
        )
        (entry,) = run_cache_dir().glob("*.json")
        os.utime(entry, (1_000.0, 1_000.0))
        assert _load_disk(RunRequest(quick, "NEAR")) is not None
        assert entry.stat().st_mtime > 1_000.0

    def test_stats_counts_entries_and_bytes(self):
        stats = disk_cache_stats()
        assert stats["entries"] == 0
        assert stats["total_bytes"] == 0
        run_cache_dir().mkdir(parents=True, exist_ok=True)
        _fake_entry("a", 120, mtime=1_000.0)
        _fake_entry("b", 80, mtime=2_000.0)
        stats = disk_cache_stats()
        assert stats["entries"] == 2
        assert stats["total_bytes"] == 200
        assert stats["oldest_mtime"] == 1_000.0
        assert stats["newest_mtime"] == 2_000.0
        assert stats["directory"] == str(run_cache_dir())
