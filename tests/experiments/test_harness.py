"""Integration tests of the experiment harness (tiny profile)."""

import math

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    PredictionExperimentConfig,
    clear_caches,
    profile_config,
    run_policy,
    sweep_parameter,
)
from repro.experiments.runner import available_policies, predicted_slot_matrix
from repro.experiments.tables import build_table7
from repro.utils.textplot import render_heatmap, render_series, render_table


@pytest.fixture(scope="module")
def tiny():
    return profile_config("tiny")


class TestConfig:
    def test_profiles(self):
        assert profile_config("small").grid_rows == 4
        assert profile_config("paper").grid_rows == 16
        with pytest.raises(ValueError):
            profile_config("galactic")

    def test_sweep_presets_scale_with_drivers(self):
        cfg = ExperimentConfig(num_drivers=120)
        assert cfg.driver_sweep() == [40, 80, 120, 160, 200]
        assert len(cfg.idle_driver_sweep()) == 8
        assert cfg.batch_interval_sweep() == [3.0, 5.0, 10.0, 20.0, 30.0]

    def test_replace(self):
        cfg = ExperimentConfig()
        assert cfg.replace(num_drivers=99).num_drivers == 99
        assert cfg.num_drivers == 120

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(num_drivers=0)
        with pytest.raises(ValueError):
            ExperimentConfig(space_scale=1.5)
        with pytest.raises(ValueError):
            PredictionExperimentConfig(history_days=5, train_days=5)


class TestRunner:
    def test_unknown_policy_rejected(self, tiny):
        with pytest.raises(ValueError):
            run_policy(tiny, "TELEPORT")

    def test_runs_and_caches(self, tiny):
        first = run_policy(tiny, "NEAR")
        second = run_policy(tiny, "NEAR")
        assert first is second  # memoised
        assert first.total_orders > 0
        assert 0 < first.served_orders <= first.total_orders
        assert first.total_revenue > 0

    def test_upper_dominates_feasible_policies(self, tiny):
        upper = run_policy(tiny, "UPPER")
        near = run_policy(tiny, "NEAR")
        assert upper.total_revenue >= near.total_revenue

    def test_all_policies_run(self, tiny):
        for name in ("RAND", "LTG", "IRG-R", "SHORT-R"):
            summary = run_policy(tiny, name)
            assert summary.total_revenue >= 0
        assert "LS-P" in available_policies()

    def test_deterministic_across_cache_clear(self, tiny):
        a = run_policy(tiny, "IRG-R").total_revenue
        clear_caches()
        b = run_policy(tiny, "IRG-R").total_revenue
        assert a == b

    def test_idle_samples_from_queueing_policies_only(self, tiny):
        irg = run_policy(tiny, "IRG-R")
        near = run_policy(tiny, "NEAR")
        assert len(irg.idle_samples) > 0
        assert len(near.idle_samples) == 0

    def test_oracle_policies_share_cache_across_predictors(self, tiny):
        """RAND/NEAR/-R variants never consult the predictor: one run."""
        for name in ("NEAR", "RAND", "IRG-R"):
            a = run_policy(tiny, name, predictor_name="ha")
            b = run_policy(tiny, name, predictor_name="deepst")
            assert a is b, name

    def test_prediction_policies_keep_per_predictor_entries(self, tiny):
        a = run_policy(tiny, "IRG-P", predictor_name="ha")
        b = run_policy(tiny, "IRG-P", predictor_name="deepst")
        assert a is not b

    def test_record_idle_samples_flag_honored_end_to_end(self, tiny):
        enabled = run_policy(tiny, "IRG-R")
        disabled = run_policy(tiny.replace(record_idle_samples=False), "IRG-R")
        assert len(enabled.idle_samples) > 0
        assert disabled.idle_samples == ()
        # The flag only affects bookkeeping, never the economics.
        assert disabled.total_revenue == enabled.total_revenue
        assert disabled.served_orders == enabled.served_orders


class TestSweeps:
    def test_sweep_shapes(self, tiny):
        result = sweep_parameter(
            tiny, "num_drivers", [16, 24], policies=("NEAR", "IRG-R")
        )
        assert result.values == [16, 24]
        assert len(result.revenue["NEAR"]) == 2
        assert len(result.batch_seconds["IRG-R"]) == 2
        # More drivers cannot reduce revenue in a supply-bound regime.
        assert result.revenue["NEAR"][1] >= result.revenue["NEAR"][0]

    def test_unknown_parameter_rejected(self, tiny):
        with pytest.raises(ValueError):
            sweep_parameter(tiny, "warp_factor", [1], policies=("NEAR",))


class TestPrediction:
    def test_predicted_matrix_shape_and_cache(self, tiny):
        matrix = predicted_slot_matrix(tiny, "ha")
        again = predicted_slot_matrix(tiny, "ha")
        assert matrix is again
        assert matrix.shape == (48, tiny.grid_rows * tiny.grid_cols)
        assert (matrix >= 0).all()

    def test_unknown_predictor_rejected(self, tiny):
        with pytest.raises(ValueError):
            predicted_slot_matrix(tiny, "crystal-ball")


class TestTables:
    def test_table7_chi_square_accepts(self):
        config = PredictionExperimentConfig(daily_orders=100_000)
        headers, rows = build_table7(config)
        assert len(rows) == 4
        accepted = [row for row in rows if row[-1] == "no"]
        # Poisson generation: H0 should survive in (almost) all cells.
        assert len(accepted) >= 3


class TestTextplot:
    def test_render_table(self):
        text = render_table(["a", "b"], [[1, 2.5], ["x", None]], title="T")
        assert "T" in text and "2.5" in text and "x" in text

    def test_render_series(self):
        text = render_series("n", [1, 2], {"NEAR": [10.0, 20.0]})
        assert "NEAR" in text

    def test_render_heatmap(self):
        text = render_heatmap([[0.0, 1.0], [0.5, 0.25]])
        assert len(text.splitlines()) == 2


class TestRebalancingVariants:
    def test_rb_suffix_builds_wrapped_policy(self):
        from repro.experiments.runner import _make_policy
        from repro.dispatch import RebalancingPolicy
        from repro.experiments.config import profile_config

        policy = _make_policy("IRG-R+RB", profile_config("tiny"))
        assert isinstance(policy, RebalancingPolicy)
        assert policy.name == "IRG-R+RB"

    def test_unknown_base_with_rb_suffix_rejected(self):
        import pytest
        from repro.experiments.config import profile_config
        from repro.experiments.runner import run_policy

        with pytest.raises(ValueError, match="unknown policy"):
            run_policy(profile_config("tiny"), "WAT+RB")
