"""Tests of the artefact registry (the CLI/benchmark rendering layer)."""

import numpy as np
import pytest

from repro.experiments.artifacts import (
    artifact_names,
    build_artifact,
    get_artifact,
    render_figure13,
    render_histogram_panels,
    render_idle_time_maps,
    render_order_distribution,
    render_sweep_figure,
)
from repro.experiments.config import profile_config
from repro.experiments.sweeps import SweepResult


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        expected = {
            "table3", "table4", "table6", "table7", "table8", "tableA",
            "figure5", "figure6", "figure7", "figure8", "figure9",
            "figure10", "figure11", "figure12", "figure13",
        }
        assert set(artifact_names()) == expected

    def test_kinds_are_valid(self):
        for name in artifact_names():
            assert get_artifact(name).kind in ("sim", "prediction")

    def test_prediction_artifacts_flagged(self):
        for name in ("table6", "table7", "table8", "tableA", "figure11", "figure12"):
            assert get_artifact(name).kind == "prediction"

    def test_unknown_artifact_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="table3"):
            get_artifact("table99")

    def test_titles_are_informative(self):
        for name in artifact_names():
            assert len(get_artifact(name).title) > 10

    def test_build_sim_artifact_end_to_end(self):
        """figure5 only bins a generated trace — cheap enough for a unit test."""
        content = build_artifact("figure5", sim_config=profile_config("tiny"))
        assert "Figure 5" in content
        assert "c0" in content  # the per-column table rendered


def _sweep_result():
    return SweepResult(
        parameter="num_drivers",
        values=[10, 20],
        revenue={"NEAR": [1.0, 2.0], "IRG-R": [1.5, 2.5]},
        batch_seconds={"NEAR": [0.001, 0.002], "IRG-R": [0.003, 0.004]},
        served={"NEAR": [5, 9], "IRG-R": [6, 11]},
    )


class TestRenderers:
    def test_sweep_figure_contains_both_panels(self):
        text = render_sweep_figure("n", _sweep_result(), "REV TITLE", "TIME TITLE")
        assert "REV TITLE" in text and "TIME TITLE" in text
        assert "IRG-R" in text
        # Timings are reported in milliseconds.
        assert "3.0" in text or "3" in text

    def test_histogram_panels_layout(self):
        panels = [
            {
                "region": "Region 1",
                "hour": "7:00 A.M.",
                "bins": [(0, 5), (5, 10)],
                "observed": [12, 8],
                "expected": [11.5, 8.5],
            }
        ]
        text = render_histogram_panels(panels, "HEAD")
        assert text.startswith("HEAD")
        assert "0~5" in text and "Region 1 @ 7:00 A.M." in text

    def test_idle_time_maps_handle_nan(self):
        predicted = np.array([[1.0, np.nan], [3.0, 4.0]])
        realized = np.array([[1.1, 2.0], [np.nan, 4.2]])
        text = render_idle_time_maps(predicted, realized)
        assert "Figure 6(a)" in text and "Figure 6(b)" in text
        assert "-" in text  # NaN cells rendered as dashes

    def test_order_distribution_has_heatmap_and_counts(self):
        counts = np.array([[0.0, 5.0], [2.0, 9.0]])
        text = render_order_distribution(counts)
        assert "Figure 5" in text
        assert "9" in text

    def test_figure13_renders_all_four_sweeps(self):
        sweeps = {
            key: _sweep_result()
            for key in (
                "num_drivers", "tc_minutes", "batch_interval_s", "base_waiting_s"
            )
        }
        text = render_figure13(sweeps)
        for panel in ("13(a)", "13(b)", "13(c)", "13(d)"):
            assert panel in text
