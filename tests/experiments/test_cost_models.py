"""Tests of the config-driven cost-model factory layer."""

import pytest

from repro.data.nyc_synthetic import CityConfig, Hotspot
from repro.data.scenarios import get_scenario
from repro.experiments.config import COST_MODEL_NAMES, ExperimentConfig
from repro.experiments.cost_models import (
    congestion_core_mask,
    scenario_road_graph,
)
from repro.experiments.runner import (
    build_world,
    clear_caches,
    run_cache_key,
    world_cache_key,
)
from repro.roadnet import (
    RoadNetworkCost,
    StraightLineCost,
    TimeVaryingRoadNetworkCost,
)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


@pytest.fixture(scope="module")
def tiny():
    return ExperimentConfig(
        daily_orders=2_000.0,
        num_drivers=16,
        horizon_s=2 * 3600.0,
        space_scale=0.1,
        grid_rows=3,
        grid_cols=3,
    )


class TestConfigField:
    def test_default_and_validation(self):
        assert ExperimentConfig().cost_model == "straight_line"
        for name in COST_MODEL_NAMES:
            assert ExperimentConfig(cost_model=name).cost_model == name
        with pytest.raises(ValueError):
            ExperimentConfig(cost_model="teleport")


class TestFactory:
    def test_straight_line_is_the_historical_default(self, tiny):
        _, _, _, model = build_world(tiny)
        assert isinstance(model, StraightLineCost)
        assert model.speed_mps == tiny.speed_mps
        assert model.metric == "manhattan"

    def test_roadnet_builds_scenario_lattice_with_config_landmarks(self, tiny):
        config = tiny.replace(cost_model="roadnet", roadnet_landmarks=5)
        _, grid, _, model = build_world(config)
        scenario = get_scenario(config.city)
        assert isinstance(model, RoadNetworkCost)
        assert model.graph.num_vertices == (
            scenario.roadnet_rows * scenario.roadnet_cols
        )
        assert model.landmarks.num_landmarks == 5
        assert model.access_speed_mps == config.speed_mps
        # The lattice covers the (space_scale-shrunk) study box.
        pos = model.graph.positions_lonlat()
        assert pos[:, 0].min() == pytest.approx(grid.bbox.min_lon)
        assert pos[:, 0].max() == pytest.approx(grid.bbox.max_lon)

    def test_roadnet_tod_carries_scenario_profile_and_core(self, tiny):
        config = tiny.replace(cost_model="roadnet_tod")
        _, _, _, model = build_world(config)
        scenario = get_scenario(config.city)
        assert isinstance(model, TimeVaryingRoadNetworkCost)
        assert model.periods == scenario.congestion
        # NYC has business hotspots, so some — not all — vertices are core.
        assert 0 < int(model.core_mask.sum()) < model.graph.num_vertices

    def test_scenario_graph_is_deterministic(self, tiny):
        scenario = get_scenario("nyc")
        _, grid, _, _ = build_world(tiny)
        first = scenario_road_graph(scenario, grid, tiny.speed_mps)
        second = scenario_road_graph(scenario, grid, tiny.speed_mps)
        assert first.num_vertices == second.num_vertices
        assert first.num_edges == second.num_edges
        for u in first.vertices():
            assert dict(first.out_edges(u)) == dict(second.out_edges(u))

    def test_scenarios_produce_distinct_lattices(self, tiny):
        _, grid, _, _ = build_world(tiny)
        nyc = scenario_road_graph(get_scenario("nyc"), grid, tiny.speed_mps)
        sprawl = scenario_road_graph(
            get_scenario("sprawl"), grid, tiny.speed_mps
        )
        assert nyc.num_vertices != sprawl.num_vertices

    def test_core_mask_empty_without_business_hotspots(self, tiny):
        _, grid, _, _ = build_world(tiny)
        graph = scenario_road_graph(get_scenario("nyc"), grid, tiny.speed_mps)
        residential = CityConfig(
            bbox=grid.bbox,
            hotspots=(
                Hotspot(grid.bbox.center.lon, grid.bbox.center.lat, 0.01, 1.0,
                        "residential"),
            ),
        )
        assert congestion_core_mask(graph, residential).sum() == 0


class TestCaching:
    def test_world_cache_key_and_memoisation_fork_on_cost_model(self, tiny):
        roadnet = tiny.replace(cost_model="roadnet")
        tod = tiny.replace(cost_model="roadnet_tod")
        keys = {world_cache_key(c) for c in (tiny, roadnet, tod)}
        assert len(keys) == 3
        assert build_world(tiny)[3] is not build_world(roadnet)[3]
        # Same config hits the same memoised world (trips and model shared).
        assert build_world(roadnet)[3] is build_world(roadnet)[3]

    def test_run_cache_key_includes_cost_model(self, tiny):
        assert run_cache_key(tiny, "NEAR") != run_cache_key(
            tiny.replace(cost_model="roadnet"), "NEAR"
        )

    def test_landmark_knob_forks_worlds_but_shares_runs(self, tiny):
        """The memoised world embeds the landmark tables, so a landmark
        ablation must get the model it asked for — while run/disk keys
        keep sharing entries (the knob never changes results)."""
        few = tiny.replace(cost_model="roadnet", roadnet_landmarks=0)
        many = tiny.replace(cost_model="roadnet", roadnet_landmarks=3)
        assert world_cache_key(few) != world_cache_key(many)
        assert build_world(few)[3].landmarks is None
        assert build_world(many)[3].landmarks.num_landmarks == 3
        assert run_cache_key(few, "NEAR") == run_cache_key(many, "NEAR")
        # Straight-line worlds ignore the knob and share one entry.
        assert world_cache_key(
            tiny.replace(roadnet_landmarks=0)
        ) == world_cache_key(tiny.replace(roadnet_landmarks=16))
