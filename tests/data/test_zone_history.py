"""Tests of the irregular-zone count history builder."""

import numpy as np
import pytest

from repro.data.history import HistoryBuilder, ZoneHistoryBuilder
from repro.data.nyc_synthetic import CityConfig, NycTraceGenerator
from repro.geo import build_jittered_zones


@pytest.fixture(scope="module")
def generator():
    return NycTraceGenerator(CityConfig(daily_orders=3000.0), seed=4)


@pytest.fixture(scope="module")
def zones(generator):
    return build_jittered_zones(
        generator.grid.bbox, rows=4, cols=4, rng=np.random.default_rng(1)
    ).build_index()


class TestZoneHistoryBuilder:
    def test_shapes_and_meta(self, generator, zones):
        history = ZoneHistoryBuilder(generator, zones, slot_minutes=60).build(3)
        assert history.counts.shape == (3, 24, 16)
        assert history.num_days == 3
        assert history.slot_minutes == 60
        assert len(history.day_of_week) == 3

    def test_counts_total_matches_trips(self, generator, zones):
        history = ZoneHistoryBuilder(generator, zones, slot_minutes=30).build(2)
        for day in range(2):
            trips = generator.generate_trips(day)
            assert history.counts[day].sum() == pytest.approx(len(trips))

    def test_grid_and_zone_totals_agree(self, generator, zones):
        """Same generator, different partitions: per-slot totals match."""
        zone_history = ZoneHistoryBuilder(generator, zones, slot_minutes=120).build(1)
        trips = generator.generate_trips(0)
        slot_totals = np.zeros(12)
        for trip in trips:
            slot_totals[min(int(trip.pickup_time_s // 7200), 11)] += 1
        assert np.allclose(zone_history.counts[0].sum(axis=1), slot_totals)

    def test_meta_matches_grid_builder(self, generator, zones):
        zone_history = ZoneHistoryBuilder(generator, zones).build(4)
        grid_history = HistoryBuilder(generator).build(4)
        assert np.array_equal(zone_history.day_of_week, grid_history.day_of_week)
        assert np.array_equal(zone_history.weather, grid_history.weather)

    def test_rejects_zero_days(self, generator, zones):
        with pytest.raises(ValueError):
            ZoneHistoryBuilder(generator, zones).build(0)
