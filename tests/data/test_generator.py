"""Tests of the NYC-like synthetic generator and workload assembly."""

import numpy as np
import pytest

from repro.data import (
    CityConfig,
    HistoryBuilder,
    NycTraceGenerator,
    TripRecord,
    WorkloadConfig,
    initial_drivers_from_trips,
    riders_from_trips,
)
from repro.data.io import read_trips_csv, write_trips_csv
from repro.data.nyc_synthetic import scaled_city_config
from repro.geo import GeoPoint
from repro.roadnet.travel_time import StraightLineCost
from repro.stats import poisson_chi_square_test


@pytest.fixture(scope="module")
def generator():
    return NycTraceGenerator(CityConfig(daily_orders=20_000, rows=4, cols=4), seed=5)


class TestGenerator:
    def test_deterministic_per_seed(self, generator):
        other = NycTraceGenerator(CityConfig(daily_orders=20_000, rows=4, cols=4), seed=5)
        a = generator.generate_trips(0)[:50]
        b = other.generate_trips(0)[:50]
        assert [(t.pickup_time_s, t.pickup.lon) for t in a] == [
            (t.pickup_time_s, t.pickup.lon) for t in b
        ]

    def test_daily_volume_close_to_target(self, generator):
        trips = generator.generate_trips(1)
        ctx = generator.day_context(1)
        target = 20_000 * ctx.weather_factor
        assert len(trips) == pytest.approx(target, rel=0.05)

    def test_weekend_damped(self, generator):
        weekday = generator.minute_rate_matrix(0).sum()   # Monday
        weekend = generator.minute_rate_matrix(5).sum()   # Saturday
        ctx_wd = generator.day_context(0)
        ctx_we = generator.day_context(5)
        # Normalise out the weather factor before comparing.
        assert weekend / ctx_we.weather_factor < weekday / ctx_wd.weather_factor

    def test_rush_hour_peaks(self, generator):
        rates = generator.minute_rate_matrix(0).sum(axis=1)  # weekday
        assert rates[8 * 60 + 30] > 2.0 * rates[4 * 60]      # 8:30 vs 4:00
        assert rates[18 * 60 + 30] > 2.0 * rates[4 * 60]

    def test_trips_inside_bbox(self, generator):
        for trip in generator.generate_trips(0)[:200]:
            assert generator.grid.bbox.contains(trip.pickup)
            assert generator.grid.bbox.contains(trip.dropoff)

    def test_trips_sorted_by_time(self, generator):
        trips = generator.generate_trips(0)
        times = [t.pickup_time_s for t in trips]
        assert times == sorted(times)

    def test_destination_matrix_row_stochastic(self, generator):
        matrix = generator.destination_matrix(8, is_weekend=False)
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0, rtol=1e-9)
        assert (matrix >= 0).all()

    def test_commute_reverses_between_morning_and_evening(self, generator):
        morning = generator.commute_signal(8 * 60 + 30, is_weekend=False)
        evening = generator.commute_signal(18 * 60 + 30, is_weekend=False)
        assert morning > 0.3
        assert evening < -0.3
        assert generator.commute_signal(8 * 60, is_weekend=True) == 0.0

    def test_minute_counts_are_poisson(self):
        """The core Appendix-B property: per-minute counts pass the chi-square
        Poisson test in a busy region.

        The day-scale weather multiplier is disabled: pooling days with
        different multipliers yields a Poisson *mixture* (over-dispersed),
        while Appendix B tests within a weather-stable period.
        """
        stationary = NycTraceGenerator(
            CityConfig(daily_orders=20_000, rows=4, cols=4,
                       weather_sigma=0.0, rainy_probability=0.0),
            seed=5,
        )
        region = stationary.hot_regions(top=1)[0]
        samples = []
        for day in [d for d in range(30) if d % 7 < 5][:21]:
            samples.extend(
                int(c)
                for c in stationary.sample_minute_counts(day, region, 8 * 60, 8 * 60 + 10)
            )
        result = poisson_chi_square_test(samples)
        assert not result.reject

    def test_expected_slot_counts_match_rate_matrix(self, generator):
        expected = generator.expected_slot_counts(0, slot_minutes=30)
        rates = generator.minute_rate_matrix(0)
        np.testing.assert_allclose(expected.sum(), rates.sum(), rtol=1e-9)
        assert expected.shape == (48, 16)

    def test_invalid_slot_minutes(self, generator):
        with pytest.raises(ValueError):
            generator.generate_slot_counts(0, slot_minutes=37)


class TestScaledCity:
    def test_scaling_shrinks_bbox(self):
        base = CityConfig()
        scaled = scaled_city_config(base, 0.2)
        assert scaled.bbox.width == pytest.approx(base.bbox.width * 0.2)
        assert scaled.bbox.center.lon == pytest.approx(base.bbox.center.lon)

    def test_hotspots_stay_inside(self):
        scaled = scaled_city_config(CityConfig(), 0.25)
        for spot in scaled.hotspots:
            assert scaled.bbox.contains(GeoPoint(spot.lon, spot.lat))

    def test_gravity_factor_override(self):
        base = CityConfig()
        scaled = scaled_city_config(base, 0.2, gravity_factor=1.0)
        assert scaled.gravity_scale_m == base.gravity_scale_m

    def test_identity(self):
        base = CityConfig()
        assert scaled_city_config(base, 1.0) is base

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            scaled_city_config(CityConfig(), 0.0)


class TestWorkloadAssembly:
    def test_riders_from_trips(self, generator):
        trips = generator.generate_trips(0)[:100]
        cost = StraightLineCost(speed_mps=8.0)
        riders = riders_from_trips(
            trips, generator.grid, cost, WorkloadConfig(base_waiting_s=120.0),
            np.random.default_rng(0),
        )
        assert len(riders) == 100
        for rider, trip in zip(riders, trips):
            assert rider.request_time_s == trip.pickup_time_s
            assert 121.0 <= rider.deadline_s - rider.request_time_s <= 130.0
            assert rider.revenue == pytest.approx(rider.trip_seconds)

    def test_alpha_scales_revenue(self, generator):
        trips = generator.generate_trips(0)[:10]
        cost = StraightLineCost(speed_mps=8.0)
        riders = riders_from_trips(
            trips, generator.grid, cost, WorkloadConfig(alpha=2.5),
            np.random.default_rng(0),
        )
        for rider in riders:
            assert rider.revenue == pytest.approx(2.5 * rider.trip_seconds)

    def test_drivers_at_trip_pickups(self, generator):
        trips = generator.generate_trips(0)[:100]
        drivers = initial_drivers_from_trips(
            trips, generator.grid, 10, np.random.default_rng(0)
        )
        assert len(drivers) == 10
        pickups = {(t.pickup.lon, t.pickup.lat) for t in trips}
        for driver in drivers:
            assert (driver.position.lon, driver.position.lat) in pickups

    def test_empty_trace_rejected(self, generator):
        with pytest.raises(ValueError):
            initial_drivers_from_trips([], generator.grid, 5, np.random.default_rng(0))


class TestHistoryBuilder:
    def test_shapes_and_meta(self, generator):
        history = HistoryBuilder(generator, slot_minutes=30).build(num_days=9)
        assert history.counts.shape == (9, 48, 16)
        assert history.day_of_week.tolist() == [0, 1, 2, 3, 4, 5, 6, 0, 1]
        assert history.is_weekend.tolist() == [False] * 5 + [True, True] + [False, False]

    def test_split(self, generator):
        history = HistoryBuilder(generator).build(num_days=9)
        train, test = history.split(7)
        assert train.num_days == 7
        assert test.num_days == 2
        assert test.first_day_index == 7
        np.testing.assert_array_equal(test.counts[0], history.counts[7])

    def test_invalid_split(self, generator):
        history = HistoryBuilder(generator).build(num_days=4)
        with pytest.raises(ValueError):
            history.split(4)


class TestTripIO:
    def test_roundtrip(self, tmp_path, generator):
        trips = generator.generate_trips(0)[:25]
        path = tmp_path / "trace.csv"
        assert write_trips_csv(path, trips) == 25
        loaded = read_trips_csv(path)
        assert len(loaded) == 25
        for a, b in zip(trips, loaded):
            assert b.pickup_time_s == pytest.approx(a.pickup_time_s, abs=1e-3)
            assert b.pickup.lon == pytest.approx(a.pickup.lon, abs=1e-6)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError):
            read_trips_csv(path)

    def test_trip_validation(self):
        with pytest.raises(ValueError):
            TripRecord(pickup_time_s=-1.0, pickup=GeoPoint(0, 0), dropoff=GeoPoint(0, 0))
