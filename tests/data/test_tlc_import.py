"""Tests of the NYC TLC yellow-taxi CSV importer."""

import pytest

from repro.data.io import read_tlc_trips_csv
from repro.geo import BoundingBox

# The 2013 "trip_data" vintage the paper used (extra columns included to
# prove they are ignored).
HEADER_2013 = (
    "medallion,hack_license,vendor_id,rate_code,store_and_fwd_flag,"
    "pickup_datetime,dropoff_datetime,passenger_count,trip_time_in_secs,"
    "trip_distance,pickup_longitude,pickup_latitude,"
    "dropoff_longitude,dropoff_latitude"
)


def _row(stamp, plon, plat, dlon, dlat):
    return (
        f"A1,B2,VTS,1,N,{stamp},{stamp},1,600,2.1,{plon},{plat},{dlon},{dlat}"
    )


def _write(tmp_path, lines, name="trips.csv"):
    path = tmp_path / name
    path.write_text("\n".join(lines) + "\n")
    return path


class TestTlc2013Schema:
    def test_parses_well_formed_rows(self, tmp_path):
        path = _write(tmp_path, [
            HEADER_2013,
            _row("2013-05-28 08:00:00", -73.98, 40.75, -73.96, 40.78),
            _row("2013-05-28 08:15:30", -73.99, 40.73, -73.97, 40.76),
        ])
        trips = read_tlc_trips_csv(path)
        assert len(trips) == 2
        assert trips[0].pickup_time_s == pytest.approx(8 * 3600.0)
        assert trips[1].pickup_time_s == pytest.approx(8 * 3600.0 + 15 * 60 + 30)
        assert trips[0].pickup.lon == pytest.approx(-73.98)
        assert trips[0].dropoff.lat == pytest.approx(40.78)

    def test_output_sorted_by_pickup_time(self, tmp_path):
        path = _write(tmp_path, [
            HEADER_2013,
            _row("2013-05-28 09:00:00", -73.98, 40.75, -73.96, 40.78),
            _row("2013-05-28 07:00:00", -73.98, 40.75, -73.96, 40.78),
        ])
        trips = read_tlc_trips_csv(path)
        assert trips[0].pickup_time_s < trips[1].pickup_time_s

    def test_zero_coordinates_dropped(self, tmp_path):
        """TLC files mark missing GPS fixes with zeros."""
        path = _write(tmp_path, [
            HEADER_2013,
            _row("2013-05-28 08:00:00", 0.0, 0.0, -73.96, 40.78),
            _row("2013-05-28 08:01:00", -73.98, 40.75, 0.0, 40.78),
            _row("2013-05-28 08:02:00", -73.98, 40.75, -73.96, 40.78),
        ])
        assert len(read_tlc_trips_csv(path)) == 1

    def test_malformed_rows_skipped(self, tmp_path):
        path = _write(tmp_path, [
            HEADER_2013,
            "garbage,row",
            _row("2013-05-28 08:00:00", -73.98, 40.75, -73.96, 40.78),
            _row("2013-05-28 08:01:00", "not-a-number", 40.75, -73.96, 40.78),
        ])
        assert len(read_tlc_trips_csv(path)) == 1

    def test_date_filter(self, tmp_path):
        path = _write(tmp_path, [
            HEADER_2013,
            _row("2013-05-27 23:59:59", -73.98, 40.75, -73.96, 40.78),
            _row("2013-05-28 08:00:00", -73.98, 40.75, -73.96, 40.78),
        ])
        trips = read_tlc_trips_csv(path, date="2013-05-28")
        assert len(trips) == 1
        assert trips[0].pickup_time_s == pytest.approx(8 * 3600.0)

    def test_bbox_filter(self, tmp_path):
        nyc = BoundingBox(-74.03, 40.58, -73.77, 40.92)
        path = _write(tmp_path, [
            HEADER_2013,
            _row("2013-05-28 08:00:00", -73.98, 40.75, -73.96, 40.78),
            _row("2013-05-28 08:01:00", -75.5, 40.75, -73.96, 40.78),  # NJ
        ])
        assert len(read_tlc_trips_csv(path, bbox=nyc)) == 1

    def test_max_rows(self, tmp_path):
        rows = [HEADER_2013] + [
            _row(f"2013-05-28 08:00:{i:02d}", -73.98, 40.75, -73.96, 40.78)
            for i in range(20)
        ]
        assert len(read_tlc_trips_csv(_write(tmp_path, rows), max_rows=5)) == 5


class TestTpepSchema:
    """The later `tpep_*` vintage uses different column names."""

    HEADER = (
        "VendorID,tpep_pickup_datetime,tpep_dropoff_datetime,passenger_count,"
        "trip_distance,pickup_longitude,pickup_latitude,RateCodeID,"
        "store_and_fwd_flag,dropoff_longitude,dropoff_latitude,payment_type"
    )

    def test_parses_tpep_columns(self, tmp_path):
        path = _write(tmp_path, [
            self.HEADER,
            "2,2015-01-15 19:05:39,2015-01-15 19:23:42,1,1.59,"
            "-73.993896,40.750111,1,N,-73.974785,40.750618,1",
        ])
        trips = read_tlc_trips_csv(path)
        assert len(trips) == 1
        assert trips[0].pickup_time_s == pytest.approx(
            19 * 3600 + 5 * 60 + 39
        )


class TestErrors:
    def test_non_tlc_file_rejected(self, tmp_path):
        path = _write(tmp_path, ["a,b,c", "1,2,3"])
        with pytest.raises(ValueError, match="missing columns"):
            read_tlc_trips_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_tlc_trips_csv(path)
