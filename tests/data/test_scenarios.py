"""Tests of the city-scenario catalogue."""

import numpy as np
import pytest

from repro.data.nyc_synthetic import CityConfig, NycTraceGenerator
from repro.data.scenarios import SCENARIOS, get_scenario, scenario_names
from repro.geo.bbox import NYC_BBOX


class TestCatalogue:
    def test_required_scenarios_present(self):
        names = scenario_names()
        for required in ("nyc", "dense-core", "polycentric", "sprawl"):
            assert required in names

    def test_unknown_name_rejected_with_catalogue(self):
        with pytest.raises(ValueError, match="dense-core"):
            get_scenario("atlantis")

    def test_nyc_scenario_reproduces_generator_defaults(self):
        """The default city must stay byte-for-byte the paper's study area."""
        built = get_scenario("nyc").city_config(
            daily_orders=25_000.0, rows=16, cols=16
        )
        assert built == CityConfig(daily_orders=25_000.0, rows=16, cols=16)

    def test_hotspots_inside_study_area(self):
        for scenario in SCENARIOS.values():
            for spot in scenario.hotspots:
                assert NYC_BBOX.min_lon <= spot.lon <= NYC_BBOX.max_lon, (
                    scenario.name
                )
                assert NYC_BBOX.min_lat <= spot.lat <= NYC_BBOX.max_lat, (
                    scenario.name
                )


class TestGeometryDiversity:
    @pytest.fixture(scope="class")
    def intensity_by_city(self):
        out = {}
        for name in ("nyc", "dense-core", "polycentric", "sprawl"):
            config = get_scenario(name).city_config(
                daily_orders=4_000.0, rows=4, cols=4
            )
            generator = NycTraceGenerator(config, seed=3)
            trips = generator.generate_trips(0)
            counts = np.zeros(generator.grid.num_regions)
            for trip in trips:
                counts[generator.grid.region_of(trip.pickup)] += 1
            out[name] = counts / counts.sum()
        return out

    def test_scenarios_produce_distinct_spatial_demand(self, intensity_by_city):
        names = list(intensity_by_city)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                delta = np.abs(intensity_by_city[a] - intensity_by_city[b])
                assert delta.sum() > 0.05, (a, b)

    def test_dense_core_concentrates_sprawl_disperses(self, intensity_by_city):
        # Top region's demand share orders the geometries as designed.
        peak = {name: v.max() for name, v in intensity_by_city.items()}
        assert peak["dense-core"] > peak["polycentric"]
        assert peak["polycentric"] > peak["sprawl"]


class TestExperimentConfigIntegration:
    def test_city_field_validated(self):
        from repro.experiments.config import ExperimentConfig

        with pytest.raises(ValueError, match="unknown city"):
            ExperimentConfig(city="atlantis")

    def test_city_changes_generated_world(self):
        from repro.experiments.config import profile_config
        from repro.experiments.runner import build_world, clear_caches

        clear_caches()
        tiny = profile_config("tiny")
        _, _, nyc_trips, _ = build_world(tiny)
        _, _, sprawl_trips, _ = build_world(tiny.replace(city="sprawl"))
        assert len(nyc_trips) != len(sprawl_trips) or any(
            a.pickup != b.pickup for a, b in zip(nyc_trips, sprawl_trips)
        )
        clear_caches()
