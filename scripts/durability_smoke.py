"""Durability smoke: kill -9 a live dispatch server, recover, demand bit identity.

The CI-grade version of the recovery unit tests, with a real process
boundary:

1. Run the reference day — an embedded, uninterrupted server — and keep
   its assignment log and economics.
2. Launch ``repro serve --wal-dir ... --speedup 0`` as a subprocess and
   drive the same workload over HTTP in lockstep.
3. ``SIGKILL`` the server mid-day (no shutdown hook runs, exactly like a
   crashed host), relaunch it with ``--recover`` on the same port, and
   let the client's retry/backoff path carry the replay across the
   restart.
4. Tick through the horizon, finalize, and assert the recovered day's
   assignment log and economics equal the uninterrupted run bit for bit.

With ``--shards N`` the same story runs against a region-sharded
deployment: N ``repro serve --shard-index i`` worker subprocesses, each
with its own WAL, behind an in-process :class:`ShardRouter`.  One worker
is SIGKILLed mid-day and relaunched with ``--recover`` *without* waiting
for it — the router's decorrelated-jitter retries must carry the
lockstep broadcast across the whole recovery gap — and the merged day
must equal an uninterrupted run of the same sharded stack bit for bit.

Exit status 0 on identity, 1 on any divergence (with a diff summary).

Usage::

    PYTHONPATH=src python scripts/durability_smoke.py --requests 300
    PYTHONPATH=src python scripts/durability_smoke.py --requests 300 --shards 3
"""

import argparse
import http.client
import os
import random
import signal
import socket
import subprocess
import sys
import tempfile
import time

from repro.experiments.config import profile_config
from repro.serve.loadgen import ServeClient, _window_batches, decorrelated_backoff
from repro.serve.server import start_server_in_thread
from repro.serve.service import DispatchService, rider_to_payload
from repro.sim.stepper import num_batches_for_horizon


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def sim_rows(assignments: list[dict]) -> list[tuple]:
    """Assignment log minus wall-clock latency (not reproducible state)."""
    return [
        (
            a["rider_id"],
            a["driver_id"],
            a["assign_time_s"],
            a["pickup_eta_s"],
            a["pickup_time_s"],
        )
        for a in assignments
    ]


def launch_server(args, port: int, wal_dir: str, recover: bool) -> subprocess.Popen:
    command = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--profile",
        args.profile,
        "--policy",
        args.policy,
        "--speedup",
        "0",
        "--port",
        str(port),
        "--wal-dir",
        wal_dir,
        "--fsync",
        args.fsync,
    ]
    if recover:
        command.append("--recover")
    return subprocess.Popen(command, env={**os.environ, "PYTHONPATH": "src"})


def wait_ready(port: int, proc: subprocess.Popen, timeout_s: float = 120.0) -> None:
    """Poll /status until the server answers (world build takes a while)."""
    deadline = time.monotonic() + timeout_s
    rng = random.Random()
    delay = 0.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(f"server exited during startup (rc={proc.returncode})")
        probe = ServeClient("127.0.0.1", port, timeout_s=2.0, max_retries=0)
        try:
            probe.request("GET", "/status")
            return
        except (OSError, http.client.HTTPException):
            # Jittered like the client's own retry path, so N parallel
            # shard-worker waits do not hammer in lockstep.
            delay = decorrelated_backoff(rng, 0.2, delay, 1.0)
            time.sleep(delay)
        finally:
            probe.close()
    raise SystemExit(f"server on port {port} not ready after {timeout_s:.0f}s")


def reference_run(config, args, stream):
    """The never-crashed day, embedded in-process: the ground truth."""
    service = DispatchService.from_config(config, args.policy)
    with start_server_in_thread(service) as handle:
        client = ServeClient(handle.host, handle.port)
        try:
            drive(client, config, stream)
        finally:
            client.close()
        assignments = service.assignments()
        status = service.status()
    return sim_rows(assignments), economics(status)


def economics(status: dict) -> dict:
    return {
        "served_orders": status["served_orders"],
        "reneged_orders": status["reneged_orders"],
        "total_revenue": status["total_revenue"],
    }


def drive(client, config, stream, on_batch=None) -> None:
    """Lockstep replay plus horizon drain and finalize (idempotent ops
    only, so it is safe to carry across a server restart)."""
    batches = _window_batches(stream, config.batch_interval_s)
    for position, (window, batch) in enumerate(batches):
        if on_batch is not None:
            on_batch(position)
        if window > 0:
            client.request("POST", "/tick", {"until_index": window})
        client.request(
            "POST", "/requests", [rider_to_payload(r) for r in batch]
        )
        client.request("POST", "/tick", {"until_index": window + 1})
    total = num_batches_for_horizon(config.horizon_s, config.batch_interval_s)
    client.request("POST", "/tick", {"until_index": total})
    client.request("POST", "/finalize")


def launch_worker(
    args, port: int, wal_dir: str, index: int, recover: bool
) -> subprocess.Popen:
    """One ``repro serve --shard-index`` worker subprocess."""
    command = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--profile",
        args.profile,
        "--policy",
        args.policy,
        "--port",
        str(port),
        "--wal-dir",
        wal_dir,
        "--fsync",
        args.fsync,
        "--shards",
        str(args.shards),
        "--shard-index",
        str(index),
    ]
    if recover:
        command.append("--recover")
    return subprocess.Popen(command, env={**os.environ, "PYTHONPATH": "src"})


def sharded_reference_run(config, args, stream):
    """The never-crashed sharded day, fully in-process: the ground truth."""
    from repro.serve.router import build_sharded_stack

    with build_sharded_stack(config, args.policy, args.shards) as stack:
        with start_server_in_thread(stack.router) as handle:
            client = ServeClient(handle.host, handle.port)
            try:
                drive(client, config, stream)
            finally:
                client.close()
            assignments = stack.router.assignments()
            status = stack.router.status()
    return sim_rows(assignments), economics(status)


def run_sharded(args, config, stream) -> int:
    """Kill one shard worker of N mid-day; the router rides through."""
    from repro.experiments.runner import build_serve_world
    from repro.serve.router import ShardEndpoint, ShardRouter
    from repro.serve.shard import ShardPlan

    print(f"[1/3] reference run ({args.shards}-shard, uninterrupted)...")
    ref_rows, ref_econ = sharded_reference_run(config, args, stream)
    print(f"      {len(ref_rows)} assignments, {ref_econ}")

    wal_dir = tempfile.mkdtemp(prefix="durability-smoke-shards-")
    ports = [free_port() for _ in range(args.shards)]
    print(
        f"[2/3] crashy run: {args.shards} shard workers on ports "
        f"{ports}, wal under {wal_dir}"
    )
    procs = [
        launch_worker(args, ports[index], wal_dir, index, recover=False)
        for index in range(args.shards)
    ]
    victim = args.shards // 2  # a middle band, never demand-free
    router = None
    try:
        for index, proc in enumerate(procs):
            wait_ready(ports[index], proc)
        plan = ShardPlan.from_shape(
            config.grid_rows, config.grid_cols, args.shards
        )
        _, _, grid, *_ = build_serve_world(config, args.policy)
        # Generous retry budget: the broadcast to the killed worker must
        # survive its entire recovery (world rebuild + WAL replay).
        router = ShardRouter(
            plan,
            grid,
            [
                ShardEndpoint(index=index, host="127.0.0.1", port=port)
                for index, port in enumerate(ports)
            ],
            client_max_retries=120,
            client_max_backoff_s=2.0,
        )
        num_batches = len(_window_batches(stream, config.batch_interval_s))
        kill_at = max(1, int(num_batches * args.kill_fraction))

        def on_batch(position: int) -> None:
            if position != kill_at:
                return
            print(
                f"      SIGKILL shard {victim} after batch "
                f"{position}/{num_batches}"
            )
            procs[victim].send_signal(signal.SIGKILL)
            procs[victim].wait()
            print(
                "      relaunching with --recover — NOT waiting for it; "
                "the router's retries must carry the gap..."
            )
            procs[victim] = launch_worker(
                args, ports[victim], wal_dir, victim, recover=True
            )

        with start_server_in_thread(router) as handle:
            client = ServeClient(
                handle.host, handle.port, timeout_s=180.0, max_retries=4
            )
            try:
                drive(client, config, stream, on_batch=on_batch)
                status = client.request("GET", "/status")
                assignments = client.request("GET", "/assignments")[
                    "assignments"
                ]
            finally:
                client.close()
        reconnects = router._clients[victim].reconnects
    finally:
        if router is not None:
            router.close()
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    recovered = status.get("recovered")
    recovered_victim = recovered[victim] if recovered else None
    if recovered_victim is None:
        print(
            f"FAIL: shard {victim} never reported a recovery "
            "(kill landed too late?)"
        )
        return 1
    print(
        f"      shard {victim} recovered: {recovered_victim['ticks']} ticks / "
        f"{recovered_victim['requests']} requests replayed from its WAL; "
        f"router reconnects to it: {reconnects}"
    )

    print("[3/3] comparing merged crashy day against the uninterrupted day...")
    rows = sim_rows(assignments)
    econ = economics(status)
    failures = []
    if rows != ref_rows:
        common = sum(1 for a, b in zip(rows, ref_rows) if a == b)
        failures.append(
            f"assignment logs diverge: {len(rows)} vs {len(ref_rows)} rows, "
            f"first {common} identical"
        )
    if econ != ref_econ:
        failures.append(f"economics diverge: {econ} vs {ref_econ}")
    if reconnects == 0:
        failures.append(
            "router never reconnected to the victim — the kill did not "
            "interrupt serving"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"OK: {len(rows)} merged assignments and final economics are "
        f"bit-identical across the shard-{victim} kill -9 / --recover "
        "boundary"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=300)
    parser.add_argument("--policy", default="NEAR")
    parser.add_argument("--profile", default="tiny")
    parser.add_argument("--fsync", default="batch")
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="run the sharded variant: N worker subprocesses behind a "
        "router, kill one of them mid-day",
    )
    parser.add_argument(
        "--kill-fraction",
        type=float,
        default=0.5,
        help="fraction of the request batches to serve before the SIGKILL",
    )
    args = parser.parse_args()

    config = profile_config(args.profile)
    workload = DispatchService.from_config(config, args.policy).workload
    stream = sorted(workload, key=lambda r: (r.request_time_s, r.rider_id))
    stream = stream[: args.requests]
    print(f"workload: {len(stream)} requests over "
          f"{stream[-1].request_time_s - stream[0].request_time_s:.0f}s of sim time")

    if args.shards > 1:
        return run_sharded(args, config, stream)

    print("[1/3] reference run (embedded, uninterrupted)...")
    ref_rows, ref_econ = reference_run(config, args, stream)
    print(f"      {len(ref_rows)} assignments, {ref_econ}")

    wal_dir = tempfile.mkdtemp(prefix="durability-smoke-")
    port = free_port()
    print(f"[2/3] crashy run: repro serve on port {port}, wal at {wal_dir}")
    proc = launch_server(args, port, wal_dir, recover=False)
    state = {"proc": proc}
    try:
        wait_ready(port, proc)
        # Generous retry budget: the client must survive the restart gap.
        client = ServeClient("127.0.0.1", port, max_retries=40, max_backoff_s=2.0)
        num_batches = len(_window_batches(stream, config.batch_interval_s))
        kill_at = max(1, int(num_batches * args.kill_fraction))

        def on_batch(position: int) -> None:
            if position != kill_at:
                return
            print(f"      SIGKILL after batch {position}/{num_batches}")
            state["proc"].send_signal(signal.SIGKILL)
            state["proc"].wait()
            print("      relaunching with --recover on the same port...")
            state["proc"] = launch_server(args, port, wal_dir, recover=True)
            wait_ready(port, state["proc"])

        try:
            drive(client, config, stream, on_batch=on_batch)
            status = client.request("GET", "/status")
            assignments = client.request("GET", "/assignments")["assignments"]
            reconnects = client.reconnects
        finally:
            client.close()
    finally:
        if state["proc"].poll() is None:
            state["proc"].kill()
            state["proc"].wait()

    recovered = status.get("recovered")
    if recovered is None:
        print("FAIL: server never reported a recovery (kill landed too late?)")
        return 1
    print(f"      recovered: {recovered['ticks']} ticks / "
          f"{recovered['requests']} requests replayed from the log; "
          f"client reconnects: {reconnects}")

    print("[3/3] comparing recovered day against the uninterrupted day...")
    rows = sim_rows(assignments)
    econ = economics(status)
    failures = []
    if rows != ref_rows:
        common = sum(1 for a, b in zip(rows, ref_rows) if a == b)
        failures.append(
            f"assignment logs diverge: {len(rows)} vs {len(ref_rows)} rows, "
            f"first {common} identical"
        )
    if econ != ref_econ:
        failures.append(f"economics diverge: {econ} vs {ref_econ}")
    if reconnects == 0:
        failures.append(
            "client never reconnected — the kill did not interrupt serving"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"OK: {len(rows)} assignments and final economics are bit-identical "
          "across the kill -9 / --recover boundary")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
