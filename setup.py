"""Setup shim: metadata lives in pyproject.toml.

Kept so ``pip install -e .`` works in offline environments whose setuptools
lacks the ``wheel`` package needed by the PEP 660 editable path.
"""

from setuptools import setup

setup()
